"""Cache-fingerprint completeness and the CACHE_VERSION digest pins.

The content-addressed :class:`~repro.engine.cache.EngineCache` is only
sound when *every* result-affecting input of a cached builder is part of
its key.  PRs 2, 3, and 5 each shipped a forced ``CACHE_VERSION`` bump
because a parameter or code change slipped past the fingerprint; both
failure modes are statically checkable:

* **RC101** — in any function that calls ``cache_key(...)``, every
  parameter must be referenced inside the key expression, unless it is a
  known result-invariant (``cache``, ``jobs``) or explicitly suppressed.
* **RC102** — a committed digest map pins the byte content of the
  result-producing modules at the current ``CACHE_VERSION``.  Editing one
  of those modules without bumping ``CACHE_VERSION`` (or deliberately
  re-pinning a result-preserving change) is flagged, so stale-cache bugs
  fail CI instead of surfacing as wrong numbers.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Iterable

from repro.analysis.astutil import call_name, names_in, param_names, walk_functions
from repro.analysis.base import Checker, Module, Program, register_checker
from repro.analysis.findings import Finding, Severity
from repro.util.jsonutil import jsonable

__all__ = [
    "PINS_REL",
    "PIN_SCHEMA_VERSION",
    "RESULT_MODULES",
    "CacheFingerprintChecker",
    "CacheVersionPinChecker",
    "current_cache_version",
    "module_digest",
    "write_pins",
]

#: Parameters that are result-invariant by design: ``cache`` only routes
#: storage, ``jobs`` shards work without changing any result (the exact
#: engine's merge is deterministic; tests pin this).
EXEMPT_PARAMS = frozenset({"cache", "jobs"})

#: Repo-relative path of the committed digest-pin map.
PINS_REL = "src/repro/analysis/data/module_digests.json"

PIN_SCHEMA_VERSION = 1

#: The result-producing modules: editing any of these can change what a
#: cached artifact *means*, so each is digest-pinned at a CACHE_VERSION.
RESULT_MODULES = (
    "src/repro/engine/cache.py",
    "src/repro/engine/builders.py",
    "src/repro/engine/grid.py",
    "src/repro/engine/scaling.py",
    "src/repro/core/expansion.py",
    "src/repro/core/exact.py",
    "src/repro/cdag/graph.py",
    "src/repro/cdag/schemes.py",
    "src/repro/cdag/strassen_cdag.py",
    "src/repro/cdag/classical_cdag.py",
    "src/repro/cdag/build.py",
    "src/repro/util/matgen.py",
)

_CACHE_MODULE_REL = "src/repro/engine/cache.py"


def _expand_through_assignments(
    func: ast.FunctionDef | ast.AsyncFunctionDef, keyed: set[str]
) -> set[str]:
    """Close ``keyed`` over straight-line assignments inside ``func``.

    ``s = get_scheme(scheme); cache_key(..., s, ...)`` keys on ``scheme``
    transitively — a one-level dataflow walk, iterated to fixpoint, keeps
    such derivations from being flagged.
    """
    sources: dict[str, set[str]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            value_names = names_in(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    sources.setdefault(target.id, set()).update(value_names)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                sources.setdefault(node.target.id, set()).update(names_in(node.value))
    closed = set(keyed)
    frontier = list(closed)
    while frontier:
        name = frontier.pop()
        for src in sources.get(name, ()):
            if src not in closed:
                closed.add(src)
                frontier.append(src)
    return closed


@register_checker
class CacheFingerprintChecker(Checker):
    """RC101: parameters of cached builders must flow into ``cache_key``."""

    name = "cache-fingerprint"
    code = "RC101"
    description = (
        "every parameter of a function calling cache_key() must appear in "
        "the key (exempt: cache, jobs)"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for func in walk_functions(module.tree):
            key_calls = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Call) and call_name(node.func) == "cache_key"
            ]
            if not key_calls:
                continue
            keyed: set[str] = set()
            for call in key_calls:
                keyed |= names_in(call)
            keyed = _expand_through_assignments(func, keyed)
            for param in param_names(func):
                if param in EXEMPT_PARAMS or param in keyed:
                    continue
                yield self.finding(
                    module,
                    func.lineno,
                    f"parameter {param!r} of cached builder {func.name!r} "
                    "does not flow into cache_key()",
                    fix_hint=(
                        "pass it into cache_key(), or suppress with "
                        "# repro: ignore[RC101] if it provably cannot affect "
                        "the artifact"
                    ),
                )


def module_digest(path: Path) -> str:
    """SHA-256 of a module's bytes (the pin the RC102 policy compares)."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def current_cache_version(program: Program) -> tuple[int, int] | None:
    """``(CACHE_VERSION, line)`` parsed from ``engine/cache.py``, if present.

    Prefers the already-parsed module from the run; falls back to reading
    the file under the program root so a narrowed ``--paths`` run still
    enforces the pin policy.
    """
    module = program.module(_CACHE_MODULE_REL)
    if module is not None:
        tree: ast.Module = module.tree
    else:
        path = program.root / _CACHE_MODULE_REL
        if not path.exists():
            return None
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=_CACHE_MODULE_REL)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "CACHE_VERSION":
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, int
                    ):
                        return int(node.value.value), node.lineno
    return None


def write_pins(root: Path, modules: Iterable[str] = RESULT_MODULES) -> Path:
    """(Re)record the digest map at the current ``CACHE_VERSION``."""
    version = current_cache_version(Program(root=Path(root)))
    if version is None:
        raise ValueError(
            f"cannot pin digests: {_CACHE_MODULE_REL} (or its CACHE_VERSION "
            f"assignment) not found under {root}"
        )
    digests = {}
    for rel in sorted(modules):
        path = Path(root) / rel
        if path.exists():
            digests[rel] = module_digest(path)
    doc = {
        "schema_version": PIN_SCHEMA_VERSION,
        "cache_version": version[0],
        "modules": digests,
    }
    out = Path(root) / PINS_REL
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(jsonable(doc), indent=2, allow_nan=False) + "\n")
    return out


@register_checker
class CacheVersionPinChecker(Checker):
    """RC102: result-producing modules are digest-pinned per CACHE_VERSION."""

    name = "cache-version-pin"
    code = "RC102"
    description = (
        "result-producing modules must not change without a CACHE_VERSION "
        "bump or an explicit re-pin (repro check --repin)"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        version = current_cache_version(program)
        if version is None:
            # Not a repro engine tree (e.g. a fixture subset): nothing to pin.
            return
        current, version_line = version
        pins_path = program.root / PINS_REL
        if not pins_path.exists():
            yield self.finding(
                PINS_REL,
                0,
                "digest pin map is missing",
                fix_hint="record it with: python -m repro check --repin",
                severity=Severity.WARNING,
            )
            return
        doc = json.loads(pins_path.read_text())
        if doc.get("schema_version") != PIN_SCHEMA_VERSION:
            yield self.finding(
                PINS_REL,
                0,
                f"digest pin map has schema_version {doc.get('schema_version')!r}; "
                f"this build reads {PIN_SCHEMA_VERSION}",
                fix_hint="re-record it with: python -m repro check --repin",
            )
            return
        pinned_version = doc.get("cache_version")
        if pinned_version != current:
            yield self.finding(
                _CACHE_MODULE_REL,
                version_line,
                f"CACHE_VERSION is {current} but digests were pinned at "
                f"{pinned_version}",
                fix_hint=(
                    "acknowledge the bump by re-pinning: "
                    "python -m repro check --repin"
                ),
            )
            return
        for rel, pinned in sorted(doc.get("modules", {}).items()):
            path = program.root / rel
            if not path.exists():
                yield self.finding(
                    rel,
                    0,
                    "pinned result-producing module no longer exists",
                    fix_hint="re-pin the digest map: python -m repro check --repin",
                )
                continue
            if module_digest(path) != pinned:
                yield self.finding(
                    rel,
                    0,
                    "result-producing module changed without a CACHE_VERSION bump",
                    fix_hint=(
                        "bump CACHE_VERSION in src/repro/engine/cache.py and "
                        "re-pin, or re-pin alone (python -m repro check --repin) "
                        "if the change provably preserves every cached artifact"
                    ),
                )
