"""Spawn-pool picklability and merge-order determinism.

The engine fans work out with ``multiprocessing.get_context("spawn")``
pools (grid sweeps, the exact-expansion shard search).  Spawn pickles the
callable and every argument, and the deterministic-merge contract
(results identical for every ``jobs`` value) requires the submitted task
order to be reproducible.  Two checkers, active only in modules that
import ``multiprocessing`` or ``concurrent.futures``:

* **RC401** — lambdas, closures (functions defined inside the submitting
  function), and ``self``-bound methods handed to pool submission
  methods, or as ``Pool(initializer=...)``, fail to pickle under spawn —
  usually only on the platform where CI isn't running.
* **RC402** — ``for``/comprehension iteration directly over a ``set``
  (display, call, or comprehension) has no deterministic order; when such
  a loop builds the task list feeding a pool, results become
  run-to-run unstable.  Sort first (``sorted(...)``).
* **RC404** — process-pool construction (``multiprocessing...Pool(...)``,
  ``ProcessPoolExecutor(...)``) anywhere outside the shared persistent
  runtime (:mod:`repro.engine.pool`).  An ad-hoc pool pays cold spawns per
  call and dodges the runtime's kill switch, recovery ladder, and
  telemetry; ship work through ``submit_batch`` / ``submit_one`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import imports_module
from repro.analysis.base import Checker, Module, register_checker
from repro.analysis.findings import Finding

__all__ = ["SpawnPicklabilityChecker", "SpawnOrderChecker", "AdHocPoolChecker"]

#: Methods that submit a callable (first positional argument) to a pool.
POOL_SUBMIT_METHODS = {
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "submit",
}


def _is_parallel_module(module: Module) -> bool:
    return imports_module(module.tree, "multiprocessing") or imports_module(
        module.tree, "concurrent.futures"
    )


def _nested_function_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names of functions defined *inside* ``func`` (closures under spawn)."""
    out: set[str] = set()
    for node in ast.walk(func):
        if node is not func and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.add(node.name)
    return out


@register_checker
class SpawnPicklabilityChecker(Checker):
    """RC401: pool-submitted callables must be module-level functions."""

    name = "spawn-pool"
    code = "RC401"
    description = (
        "no lambdas, closures, or self-bound methods submitted to "
        "multiprocessing pools (spawn must pickle them)"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not _is_parallel_module(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in POOL_SUBMIT_METHODS:
                if node.args:
                    yield from self._check_callable(module, node, node.args[0])
            for kw in node.keywords:
                if kw.arg == "initializer":
                    yield from self._check_callable(module, node, kw.value)

    def _check_callable(
        self, module: Module, call: ast.Call, target: ast.expr
    ) -> Iterable[Finding]:
        hint = (
            "submit a module-level function (spawn workers re-import the "
            "module; lambdas, closures, and bound methods do not pickle)"
        )
        if isinstance(target, ast.Lambda):
            yield self.finding(
                module,
                target.lineno,
                "lambda submitted to a process pool",
                fix_hint=hint,
            )
        elif isinstance(target, ast.Attribute) and (
            isinstance(target.value, ast.Name) and target.value.id in ("self", "cls")
        ):
            yield self.finding(
                module,
                target.lineno,
                f"bound method {ast.unparse(target)} submitted to a process pool",
                fix_hint=hint,
            )
        elif isinstance(target, ast.Name):
            for func, nested in self._scopes(module):
                if target.id in nested and any(n is call for n in ast.walk(func)):
                    yield self.finding(
                        module,
                        target.lineno,
                        f"closure {target.id!r} (defined in "
                        f"{getattr(func, 'name', '?')}()) submitted to a "
                        "process pool",
                        fix_hint=hint,
                    )
                    break

    def _scopes(self, module: Module) -> list[tuple[ast.AST, set[str]]]:
        return [
            (f, _nested_function_names(f))
            for f in ast.walk(module.tree)
            if isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_checker
class SpawnOrderChecker(Checker):
    """RC402: no unordered-set iteration in multiprocessing modules."""

    name = "spawn-order"
    code = "RC402"
    description = (
        "iteration directly over a set in a multiprocessing module is "
        "order-nondeterministic; sort before fanning work out"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not _is_parallel_module(module):
            return
        hint = "iterate sorted(...) so task construction and merges are reproducible"
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                yield self.finding(
                    module,
                    node.lineno,
                    "for-loop iterates directly over an unordered set",
                    fix_hint=hint,
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(
                            module,
                            node.lineno,
                            "comprehension iterates directly over an unordered set",
                            fix_hint=hint,
                        )


#: Constructors that boot a fresh process pool (the runtime's exclusive job).
_POOL_CONSTRUCTORS = {"Pool", "ProcessPoolExecutor"}

#: The one module allowed to own worker processes.
_POOL_RUNTIME_SUFFIX = "repro/engine/pool.py"


def _constructor_name(func: ast.expr) -> str | None:
    """The terminal name of a call target: ``mp.Pool`` → ``Pool``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_checker
class AdHocPoolChecker(Checker):
    """RC404: process pools are constructed only by the shared runtime."""

    name = "adhoc-pool"
    code = "RC404"
    description = (
        "no ad-hoc multiprocessing Pool / ProcessPoolExecutor outside "
        "repro/engine/pool.py; ship work through the shared runtime"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if module.rel.replace("\\", "/").endswith(_POOL_RUNTIME_SUFFIX):
            return
        if not _is_parallel_module(module):
            return
        hint = (
            "route the work through repro.engine.pool (submit_batch / "
            "submit_one): one warm shared pool, kill switch, recovery "
            "ladder, and telemetry come for free"
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _constructor_name(node.func)
            if name in _POOL_CONSTRUCTORS:
                yield self.finding(
                    module,
                    node.lineno,
                    f"ad-hoc process pool {name}(...) outside the shared "
                    "worker-pool runtime",
                    fix_hint=hint,
                )
