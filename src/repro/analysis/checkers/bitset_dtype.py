"""Bitset dtype discipline for the exact-expansion kernels.

The PR-5 exact engine keeps vertex adjacency as packed ``uint64`` words
(``adjacency_bits``) and does popcount/Gray-code arithmetic on them.
NumPy silently promotes ``uint64 (op) int64`` to ``float64`` — a promotion
that *loses low bits* once values exceed 2**53 and turns bitwise kernels
into garbage on large instances while small-instance tests still pass.

**RC501** tracks, per function, which local names hold uint64 bitset
arrays (constructed with ``dtype=np.uint64``, ``np.uint64(...)``,
``.astype(np.uint64)``, or read from ``.adjacency_bits``) and which hold
signed/float arrays, and flags any binary or augmented operation mixing
the two families.  Plain int literals are neutral (NumPy keeps uint64 for
scalar python ints in-range), as are names the tracker cannot classify.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Checker, Module, register_checker
from repro.analysis.findings import Finding

__all__ = ["BitsetDtypeChecker"]

#: Dtype spellings that mark an expression as a uint64 bitset.
_UNSIGNED_SPELLINGS = {"uint64", "u8"}

#: Dtype spellings that mark an expression as signed/float (promotion bait).
_SIGNED_SPELLINGS = {
    "int8",
    "int16",
    "int32",
    "int64",
    "intp",
    "float16",
    "float32",
    "float64",
    "double",
}

#: Attribute reads that yield packed-uint64 bitset arrays in this codebase.
_BITSET_ATTRS = {"adjacency_bits"}

_ARRAY_CTORS = {"array", "zeros", "ones", "empty", "full", "arange", "frombuffer"}


def _dtype_spelling(node: ast.expr) -> str | None:
    """The dtype name in ``np.uint64`` / ``"uint64"`` / ``uint64`` forms."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _classify_spelling(spelling: str | None) -> str | None:
    if spelling in _UNSIGNED_SPELLINGS:
        return "uint64"
    if spelling in _SIGNED_SPELLINGS:
        return "signed"
    return None


class _DtypeTracker:
    """Best-effort per-function map of name -> {'uint64', 'signed'}."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.kinds: dict[str, str] = {}
        self._seed_from_annotations(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                kind = self.classify(node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.kinds[target.id] = kind

    def _seed_from_annotations(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                kind = self.classify(node.value) if node.value is not None else None
                if kind is not None:
                    self.kinds[node.target.id] = kind

    def classify(self, node: ast.expr | None) -> str | None:
        """'uint64' / 'signed' / None (unknown or neutral)."""
        if node is None:
            return None
        if isinstance(node, ast.Subscript):
            return self.classify(node.value)
        if isinstance(node, ast.Name):
            return self.kinds.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in _BITSET_ATTRS:
                return "uint64"
            return None
        if isinstance(node, ast.Call):
            func = node.func
            # x.astype(np.uint64) / np.uint64(...) / np.zeros(..., dtype=...)
            if isinstance(func, ast.Attribute) and func.attr == "astype" and node.args:
                return _classify_spelling(_dtype_spelling(node.args[0]))
            spelling = _dtype_spelling(func)
            direct = _classify_spelling(spelling)
            if direct is not None:
                return direct
            if isinstance(func, ast.Attribute) and func.attr in _ARRAY_CTORS:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        return _classify_spelling(_dtype_spelling(kw.value))
            # popcount-style reductions keep their input family
            if isinstance(func, ast.Attribute) and func.attr in ("sum", "copy"):
                return self.classify(func.value)
            return None
        if isinstance(node, ast.BinOp):
            left = self.classify(node.left)
            right = self.classify(node.right)
            if left == right:
                return left
            return left or right
        if isinstance(node, ast.UnaryOp):
            return self.classify(node.operand)
        return None


@register_checker
class BitsetDtypeChecker(Checker):
    """RC501: uint64 bitset operands never meet signed/float operands."""

    name = "bitset-dtype"
    code = "RC501"
    description = (
        "uint64 bitset arrays must not mix with signed/float operands "
        "(NumPy promotes the pair to float64, corrupting high bits)"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tracker = _DtypeTracker(node)
            if not any(kind == "uint64" for kind in tracker.kinds.values()):
                continue
            for expr in ast.walk(node):
                if isinstance(expr, ast.BinOp):
                    left = tracker.classify(expr.left)
                    right = tracker.classify(expr.right)
                elif isinstance(expr, ast.AugAssign):
                    left = tracker.classify(expr.target)
                    right = tracker.classify(expr.value)
                else:
                    continue
                if {left, right} == {"uint64", "signed"}:
                    yield self.finding(
                        module,
                        expr.lineno,
                        "uint64 bitset operand mixed with a signed/float "
                        "operand (NumPy promotes to float64)",
                        fix_hint=(
                            "widen the scalar side with np.uint64(...) or "
                            ".astype(np.uint64) before the operation"
                        ),
                    )
