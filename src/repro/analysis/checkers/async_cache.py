"""Async shared-cache locking: no unlocked cache mutation in coroutines.

The serving layer shares one :class:`~repro.engine.cache.EngineCache`
between every async handler in the event loop.  The cache's internal
locks make each *method* atomic, but an async handler typically performs a
compound operation (check in-flight map, read the cache, start a build,
store the result) that interleaves at every ``await`` — the classic
check-then-act race that turns single-flight into N-flight.  The service
therefore guards shared-cache access with an ``asyncio.Lock``; this
checker makes that discipline structural:

* **RC403** — inside an ``async def``, a call to a cache-touching method
  (``get_object``, ``put_object``, ``put_arrays``, ``count_build``,
  ``merge_stats``, ``reset_stats``, ``clear``) on a receiver whose
  expression mentions a cache must sit lexically inside a ``with`` /
  ``async with`` block whose context manager mentions a lock.  Blocking
  helpers like ``single_flight`` own their locking but must not run on
  the event loop anyway — dispatch them to an executor.

Active only in modules importing ``asyncio`` — synchronous code paths
rely on the cache's internal locks and are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import imports_module, walk_functions
from repro.analysis.base import Checker, Module, register_checker
from repro.analysis.findings import Finding

__all__ = ["AsyncCacheLockChecker"]

#: EngineCache methods that read-modify shared state (stats counters, the
#: LRU order, the in-memory tier) — every one is a mutation under the hood.
CACHE_TOUCHING_METHODS = frozenset(
    {
        "get_object",
        "put_object",
        "put_arrays",
        "count_build",
        "merge_stats",
        "reset_stats",
        "clear",
    }
)


def _mentions_cache(expr: ast.expr) -> bool:
    """Whether the receiver expression names a cache (``cache``, ``self.cache``,
    ``self._cache``, ``worker_cache``, ...)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "cache" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "cache" in node.attr.lower():
            return True
    return False


def _is_lock_context(item: ast.withitem) -> bool:
    """Whether one ``with``-item's context expression mentions a lock."""
    text = ast.unparse(item.context_expr).lower()
    return "lock" in text


def _protected_calls(func: ast.AsyncFunctionDef) -> set[int]:
    """ids of Call nodes lexically under a lock-holding with/async-with."""
    out: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            _is_lock_context(item) for item in node.items
        ):
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    out.add(id(inner))
    return out


@register_checker
class AsyncCacheLockChecker(Checker):
    """RC403: async handlers touch the shared cache only under a lock."""

    name = "async-cache-lock"
    code = "RC403"
    description = (
        "cache mutation inside an async def must be guarded by a "
        "with/async-with lock block (single-flight discipline)"
    )

    def check_module(self, module: Module) -> Iterable[Finding]:
        if not imports_module(module.tree, "asyncio"):
            return
        for func in walk_functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            protected = _protected_calls(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target = node.func
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr in CACHE_TOUCHING_METHODS
                    and _mentions_cache(target.value)
                ):
                    continue
                if id(node) in protected:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"async handler {func.name!r} calls "
                    f"{ast.unparse(target)}() outside a lock block",
                    fix_hint=(
                        "wrap the compound cache operation in `async with "
                        "self._lock:` (or run it in the executor via "
                        "single_flight) so it cannot interleave at an await"
                    ),
                )
