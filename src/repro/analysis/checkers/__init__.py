"""The shipped domain checkers; importing this package registers them all.

Catalog (stable codes):

=======  =====================  ==============================================
code     name                   invariant
=======  =====================  ==============================================
RC101    cache-fingerprint      every parameter of a ``cache_key``-calling
                                builder flows into the key (or is exempt)
RC102    cache-version-pin      result-producing modules may not change
                                without a ``CACHE_VERSION`` bump or re-pin
RC201    registry-parallel      ``@register_parallel`` classes declare
                                validity + analytic-cost contracts
RC202    registry-bench         ``@register_bench`` workloads declare quick
                                param sets and a scalar ``check`` payload
RC203    registry-pure-cost     pure-cost methods of registered parallel
                                algorithms never touch numpy or ``Machine``
RC301    strict-json            no raw ``json.dump(s)`` on non-literal
                                payloads outside ``util/jsonutil``
RC401    spawn-pool             no lambdas/closures/bound methods submitted
                                to multiprocessing pools
RC402    spawn-order            no unordered-set iteration feeding work
                                construction in multiprocessing modules
RC403    async-cache-lock       async handlers touch the shared engine
                                cache only inside a lock block
RC404    adhoc-pool             process pools are constructed only by the
                                shared runtime (``repro/engine/pool.py``)
RC501    bitset-dtype           uint64 bitset arrays never mix with
                                signed/float operands
RC601    broad-except           no new bare/broad ``except`` clauses
=======  =====================  ==============================================
"""

from repro.analysis.checkers import (  # noqa: F401  (import-for-effect)
    async_cache,
    bitset_dtype,
    broad_except,
    cache_fingerprint,
    registry_contracts,
    spawn_pool,
    strict_json,
)

__all__ = [
    "async_cache",
    "bitset_dtype",
    "broad_except",
    "cache_fingerprint",
    "registry_contracts",
    "spawn_pool",
    "strict_json",
]
