"""Domain-invariant static analysis for the reproduction (``repro check``).

The repo's nastiest historical bug classes are all *statically detectable*:
result-affecting parameters missing from :mod:`repro.engine.cache`
fingerprints (forced ``CACHE_VERSION`` bumps), NaN/numpy scalars leaking
into strict-JSON artifacts, and drift between registered algorithms and
their declared contracts.  Generic linters cannot see these invariants, so
this package encodes them as an AST-visitor checker framework:

* :class:`~repro.analysis.base.Checker` — the per-file / whole-program
  checker protocol, registered via ``@register_checker``;
* :class:`~repro.analysis.findings.Finding` — one diagnostic with
  ``file:line``, severity, and a fix hint;
* :mod:`repro.analysis.baseline` — a committed baseline file that
  grandfathers pre-existing findings without letting new ones in;
* :mod:`repro.analysis.runner` — file collection, checker dispatch,
  baseline filtering, and the ``--format text|json`` reports behind
  ``python -m repro check``.

The shipped checkers live in :mod:`repro.analysis.checkers`; importing
this package registers all of them.
"""

from __future__ import annotations

from repro.analysis.base import (
    Checker,
    Module,
    Program,
    available_checkers,
    get_checker,
    register_checker,
)
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.runner import CheckReport, render_findings, run_check

# Importing the subpackage registers every shipped checker.
import repro.analysis.checkers  # noqa: E402,F401  (import-for-effect)

__all__ = [
    "Checker",
    "CheckReport",
    "Finding",
    "Module",
    "Program",
    "Severity",
    "available_checkers",
    "get_checker",
    "load_baseline",
    "register_checker",
    "render_findings",
    "run_check",
    "write_baseline",
]
