"""The diagnostic record every checker emits.

A finding is identified across runs by ``(code, path, message)`` — line
numbers shift too easily to key a baseline on, while the rendered message
is stable for a given defect.  :meth:`Finding.identity` is that key;
:mod:`repro.analysis.baseline` stores and matches on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class Severity:
    """String severity levels, ordered for exit-code decisions."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = (WARNING, ERROR)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, what, how bad, and how to fix it."""

    path: str  # repo-relative posix path
    line: int  # 1-based; 0 when the finding is file-level
    code: str  # stable checker code, e.g. "RC101"
    checker: str  # registry name, e.g. "cache-fingerprint"
    severity: str  # Severity.ERROR | Severity.WARNING
    message: str  # one-line statement of the defect
    fix_hint: str = ""  # how a developer should resolve it

    def identity(self) -> tuple[str, str, str]:
        """Baseline key: stable across line-number drift."""
        return (self.code, self.path, self.message)

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "checker": self.checker,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def render(self) -> str:
        hint = f"  [{self.fix_hint}]" if self.fix_hint else ""
        return (
            f"{self.path}:{self.line}: {self.code} {self.severity}: "
            f"{self.message}{hint}"
        )
