"""The committed grandfather file for pre-existing findings.

A new checker landing on an old codebase usually surfaces findings nobody
can fix in the same PR.  Rather than weakening the checker or blocking the
rollout, the offending findings are recorded in a baseline file: baselined
findings are reported as such but do not fail the run, while any finding
*not* in the baseline does.  The file is committed (``repro check
--update-baseline`` rewrites it), so growing it is a visible diff a
reviewer must justify.

Entries key on :meth:`Finding.identity` — ``(code, path, message)`` — so
unrelated line drift does not churn the file.  The schema is versioned;
an unknown version is a hard error, not a silent re-grandfather.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.util.jsonutil import jsonable

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "split_baselined",
    "write_baseline",
]

BASELINE_SCHEMA_VERSION = 1

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE_NAME = "repro_check_baseline.json"


def write_baseline(findings: list[Finding], path: str | Path) -> Path:
    """Write the baseline for ``findings`` (sorted, strict JSON)."""
    entries = sorted({f.identity() for f in findings})
    doc = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": [
            {"code": code, "path": rel, "message": message}
            for code, rel, message in entries
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(jsonable(doc), indent=2, allow_nan=False) + "\n")
    return path


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Load the baseline identities; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    doc = json.loads(path.read_text())
    version = doc.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema_version {version!r}; "
            f"this build reads {BASELINE_SCHEMA_VERSION}"
        )
    out = set()
    for entry in doc.get("findings", []):
        out.add((str(entry["code"]), str(entry["path"]), str(entry["message"])))
    return out


def split_baselined(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, grandfathered) against the baseline."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        (old if f.identity() in baseline else new).append(f)
    return new, old
