"""Small shared AST helpers for the domain checkers."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_name",
    "decorator_call",
    "decorator_name",
    "imported_aliases",
    "imports_module",
    "names_in",
    "param_names",
    "walk_functions",
]


def call_name(func: ast.expr) -> str | None:
    """The trailing identifier of a call target: ``f`` or ``mod.f`` -> ``"f"``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def decorator_name(dec: ast.expr) -> str | None:
    """The name a decorator applies: handles ``@f``, ``@mod.f``, ``@f(...)``."""
    if isinstance(dec, ast.Call):
        return call_name(dec.func)
    return call_name(dec)


def decorator_call(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef, name: str
) -> ast.Call | None:
    """The ``@name(...)`` decorator Call on ``node``, if present."""
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call) and call_name(dec.func) == name:
            return dec
    return None


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree``, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """All parameter names of ``func`` except ``self``/``cls``."""
    a = func.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg is not None:
        names.append(a.vararg.arg)
    if a.kwarg is not None:
        names.append(a.kwarg.arg)
    return [n for n in names if n not in ("self", "cls")]


def names_in(node: ast.AST) -> set[str]:
    """Every ``ast.Name`` identifier referenced anywhere under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def imports_module(tree: ast.Module, module: str) -> bool:
    """Whether the file imports ``module`` (``import m`` or ``from m import``)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name == module or a.name.startswith(module + ".") for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == module or mod.startswith(module + "."):
                return True
    return False


def imported_aliases(tree: ast.Module, module: str, name: str) -> set[str]:
    """Local names bound to ``from <module> import <name> [as alias]``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and (node.module or "") == module:
            for a in node.names:
                if a.name == name:
                    out.add(a.asname or a.name)
    return out
