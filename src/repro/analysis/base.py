"""Checker protocol, parsed-module model, and the checker registry.

Mirrors the repo's other registries (``@register_parallel``,
``@register_bench``): a checker subclasses :class:`Checker`, declares its
stable ``code``/``name``/``description``, and registers itself with
``@register_checker``.  The runner hands each checker parsed
:class:`Module` objects (per-file pass) and the whole :class:`Program`
(cross-file pass); checkers yield :class:`~repro.analysis.findings.Finding`
records and never mutate anything.

Inline suppression: a ``# repro: ignore[RC101]`` comment on the flagged
line silences that code there (``# repro: ignore`` silences every code on
the line).  Suppressions are deliberate and visible in review, unlike
baseline entries, which grandfather findings wholesale.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity

__all__ = [
    "Checker",
    "Module",
    "Program",
    "available_checkers",
    "get_checker",
    "register_checker",
]

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Z0-9, ]+)\])?")


@dataclass
class Module:
    """One parsed source file.

    ``rel`` is the repo-relative posix path every finding reports;
    ``tree`` is the parsed AST; ``lines`` the raw source split for
    suppression-comment and context lookups.
    """

    path: Path
    rel: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, rel: str) -> "Module":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        return cls(
            path=path, rel=rel, source=source, tree=tree, lines=source.splitlines()
        )

    def suppressed_codes(self, line: int) -> set[str] | None:
        """Codes silenced on ``line`` (1-based).

        Returns ``None`` when there is no suppression comment, the empty
        set for a blanket ``# repro: ignore``, and the named codes for
        ``# repro: ignore[RC101, RC301]``.
        """
        if not 1 <= line <= len(self.lines):
            return None
        m = _IGNORE_RE.search(self.lines[line - 1])
        if m is None:
            return None
        codes = m.group("codes")
        if codes is None:
            return set()
        return {c.strip() for c in codes.split(",") if c.strip()}

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressed_codes(finding.line)
        if codes is None:
            return False
        return not codes or finding.code in codes


@dataclass
class Program:
    """Every module of one ``repro check`` run, plus the repo root.

    ``root`` anchors repo-relative paths for whole-program checkers that
    read committed data files (the digest pins) even when the run was
    pointed at a subtree.
    """

    root: Path
    modules: list[Module] = field(default_factory=list)

    def module(self, rel: str) -> Module | None:
        for m in self.modules:
            if m.rel == rel:
                return m
        return None

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)


class Checker(abc.ABC):
    """One registered invariant.

    Subclasses set ``name`` (registry key), ``code`` (stable finding
    prefix), ``description`` (one line, shown by ``repro check --list``),
    and override :meth:`check_module` and/or :meth:`check_program`.
    """

    name: str = "?"
    code: str = "RC000"
    description: str = ""
    default_severity: str = Severity.ERROR

    def check_module(self, module: Module) -> Iterable[Finding]:
        """Per-file pass; called once per parsed module."""
        return ()

    def check_program(self, program: Program) -> Iterable[Finding]:
        """Whole-program pass; called once after every module parsed."""
        return ()

    def finding(
        self,
        module_or_rel: Module | str,
        line: int,
        message: str,
        fix_hint: str = "",
        severity: str | None = None,
    ) -> Finding:
        """Convenience constructor stamping this checker's identity."""
        rel = module_or_rel.rel if isinstance(module_or_rel, Module) else module_or_rel
        return Finding(
            path=rel,
            line=line,
            code=self.code,
            checker=self.name,
            severity=severity if severity is not None else self.default_severity,
            message=message,
            fix_hint=fix_hint,
        )


_REGISTRY: dict[str, Checker] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator: instantiate and register a :class:`Checker`."""
    inst = cls()
    if inst.name in _REGISTRY and type(_REGISTRY[inst.name]) is not cls:
        raise ValueError(f"checker {inst.name!r} already registered")
    codes = {c.code for n, c in _REGISTRY.items() if n != inst.name}
    if inst.code in codes:
        raise ValueError(f"checker code {inst.code!r} already registered")
    _REGISTRY[inst.name] = inst
    return cls


def get_checker(name: str) -> Checker:
    """Fetch a registered checker by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown checker {name!r}; available: {available_checkers()}"
        ) from None


def available_checkers() -> list[str]:
    """Names of all registered checkers, sorted."""
    return sorted(_REGISTRY)
