"""File collection, checker dispatch, and report rendering.

``run_check`` is the single entry point behind ``python -m repro check``
and the test suite: collect ``.py`` files, parse them (a syntax error is
itself a finding, not a crash), run the selected checkers' per-module and
whole-program passes, drop inline-suppressed findings, split the rest
against the committed baseline, and wrap everything in a
:class:`CheckReport`.

The JSON output is schema-versioned (``CHECK_SCHEMA_VERSION``) so CI
consumers can parse it without sniffing; tests pin the schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Module, Program, available_checkers, get_checker
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_baselined,
)
from repro.analysis.findings import Finding, Severity
from repro.util.jsonutil import jsonable

__all__ = ["CHECK_SCHEMA_VERSION", "CheckReport", "collect_files", "render_findings", "run_check"]

CHECK_SCHEMA_VERSION = 1

#: Directory names never descended into while collecting files.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist"}

#: The finding identity used for unparsable files.
_PARSE_CODE = "RC001"


@dataclass
class CheckReport:
    """One ``repro check`` run's outcome."""

    findings: list[Finding]  # new findings: these gate
    baselined: list[Finding]  # grandfathered by the committed baseline
    suppressed: int  # count of inline-suppressed findings
    n_files: int
    checkers: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run should exit 0 (warnings do not gate)."""
        return not any(f.severity == Severity.ERROR for f in self.findings)

    def as_dict(self) -> dict:
        return {
            "schema_version": CHECK_SCHEMA_VERSION,
            "checkers": list(self.checkers),
            "files": self.n_files,
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.as_dict() for f in self.baselined],
            "suppressed": self.suppressed,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(jsonable(self.as_dict()), indent=indent, allow_nan=False)


def collect_files(paths: Sequence[str | Path], root: Path) -> list[tuple[Path, str]]:
    """Resolve ``paths`` to ``(abspath, repo-relative)`` python files.

    Directories are walked recursively in sorted order; explicit file
    arguments are taken verbatim.  Files outside ``root`` keep an
    absolute-ish relative string so findings stay addressable.
    """
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()

    def rel_of(p: Path) -> str:
        try:
            return p.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return p.as_posix()

    def add(p: Path) -> None:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            out.append((p, rel_of(p)))

    for path in paths:
        p = Path(path)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    add(f)
        elif p.suffix == ".py":
            add(p)
        else:
            raise ValueError(f"not a python file or directory: {p}")
    return out


def run_check(
    paths: Sequence[str | Path] | None = None,
    select: Iterable[str] | None = None,
    root: str | Path | None = None,
    baseline_path: str | Path | None = None,
    use_baseline: bool = True,
) -> CheckReport:
    """Run the selected checkers over ``paths`` (default: ``<root>/src``).

    ``root`` anchors repo-relative paths and the committed data files
    (baseline, digest pins); it defaults to the working directory.
    ``select`` narrows to named checkers (default: all registered).
    """
    import repro.analysis.checkers  # noqa: F401  (registers shipped checkers)

    root = Path(root) if root is not None else Path.cwd()
    if paths is None:
        paths = [root / "src"]
    names = sorted(select) if select is not None else available_checkers()
    checkers = [get_checker(n) for n in names]

    program = Program(root=root)
    parse_failures: list[Finding] = []
    for path, rel in collect_files(paths, root):
        try:
            program.modules.append(Module.parse(path, rel))
        except SyntaxError as exc:
            parse_failures.append(
                Finding(
                    path=rel,
                    line=int(exc.lineno or 0),
                    code=_PARSE_CODE,
                    checker="parse",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {exc.msg}",
                    fix_hint="fix the syntax error; unparsable files are unchecked",
                )
            )

    raw: list[Finding] = list(parse_failures)
    for checker in checkers:
        for module in program:
            raw.extend(checker.check_module(module))
        raw.extend(checker.check_program(program))

    kept: list[Finding] = []
    suppressed = 0
    for f in sorted(raw):
        m = program.module(f.path)
        if m is not None and m.is_suppressed(f):
            suppressed += 1
        else:
            kept.append(f)

    baseline: set[tuple[str, str, str]] = set()
    if use_baseline:
        baseline = load_baseline(
            baseline_path
            if baseline_path is not None
            else root / DEFAULT_BASELINE_NAME
        )
    new, old = split_baselined(kept, baseline)
    return CheckReport(
        findings=new,
        baselined=old,
        suppressed=suppressed,
        n_files=len(program.modules) + len(parse_failures),
        checkers=names,
    )


def render_findings(report: CheckReport) -> str:
    """Human-readable report (the CLI's ``--format text``)."""
    lines = [f.render() for f in report.findings]
    for f in report.baselined:
        lines.append(f"{f.render()}  (baselined)")
    verdict = "ok" if report.ok else "FAILED"
    lines.append(
        f"repro check: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed "
        f"across {report.n_files} file(s) with {len(report.checkers)} "
        f"checker(s): {verdict}"
    )
    return "\n".join(lines)
