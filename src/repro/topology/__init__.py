"""Machine-topology cost model: devices, links, tiered collective costing.

``Topology`` generalizes the flat α-β machine of §1.1 to hierarchical
machines (fat-tree, torus, multi-GPU clusters) while reproducing the flat
model bit-for-bit through ``Topology.uniform(alpha, beta)``::

    from repro.topology import Topology

    t = Topology.parse("fat-tree:16x4")
    t.predict_time(words=1.5e6, messages=32, p=64)
"""

from repro.topology.model import (
    TOPOLOGY_FAMILIES,
    CommTier,
    Device,
    Link,
    Topology,
)

__all__ = [
    "TOPOLOGY_FAMILIES",
    "CommTier",
    "Device",
    "Link",
    "Topology",
]
