"""Machine-topology cost model: devices, links, and tiered collective costing.

The paper costs communication on a *flat* α-β machine (§1.1: any disjoint
pairs exchange simultaneously, one latency α per message, one inverse
bandwidth β per word).  Real machines are not flat — a fat-tree pays extra
hops and oversubscribed core bandwidth once a job spans more than one edge
switch, a torus pays its diameter in latency and its bisection in
bandwidth, and a multi-GPU cluster switches from NVLink-class links to the
node interconnect the moment a job leaves one node.  This module
generalizes ``Machine.time(alpha, beta)`` to such machines without
touching the simulator: a :class:`Topology` converts the *same* measured
critical-path counters (or declared analytic costs) into predicted time
under a hierarchy of communication tiers.

Cost contract (every builder must satisfy it — CONTRIBUTING has the
checklist):

* A topology declares ordered :class:`CommTier` records, innermost first.
  A job on ``p`` ranks is costed by the **smallest tier that can hold
  p ranks**: ``alpha_eff = tier.alpha`` (worst-case path latency inside
  the tier) and ``beta_eff = tier.beta * tier.contention`` (per-word cost
  scaled by the tier's bisection load factor).
* ``predict_time(words, messages, p, flops)`` =
  ``alpha_eff·messages + beta_eff·words + flops / slowest_flop_rate(p)``.
* The **uniform** topology must reproduce the flat α-β model *bit for
  bit*: one tier, contention 1.0, infinite flop rate — so
  ``Topology.uniform(a, b).time_from_steps(...)`` equals the historical
  ``Σ_steps max_r (a·msgs_r + b·words_r)`` exactly (golden-pinned).
* A builder's validity predicate is ``capacity``: ``validate_p`` rejects
  any p the device set cannot seat (the uniform fleet is unbounded).

The :class:`Device`/:class:`Link` records are the inspectable ground truth
the tiers summarize (per-device flop rate, per-link α/β); builders derive
the tier parameters from the links they lay down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "CommTier",
    "Device",
    "Link",
    "Topology",
    "TOPOLOGY_FAMILIES",
]

#: Spec-string families accepted by :meth:`Topology.parse`.
TOPOLOGY_FAMILIES = ("uniform", "fat-tree", "torus", "gpu")


@dataclass(frozen=True)
class Device:
    """One processor: a rank seat with a useful-flop rate.

    ``flop_rate`` is in flops per α-β time unit; ``math.inf`` (the
    uniform/fat-tree/torus default) recovers the paper's pure
    communication costing where arithmetic is free.
    """

    index: int
    kind: str = "cpu"
    flop_rate: float = math.inf


@dataclass(frozen=True)
class Link:
    """One physical link with its own α (latency) and β (inverse bandwidth)."""

    src: str
    dst: str
    alpha: float
    beta: float


@dataclass(frozen=True)
class CommTier:
    """One level of the communication hierarchy.

    ``capacity`` is how many ranks fit inside the tier (0 = unbounded);
    ``alpha`` is the worst-case path latency between two ranks of the
    tier; ``contention`` multiplies ``beta`` to account for the tier's
    bisection (oversubscription ratio on a fat-tree core, ``side/4`` on a
    torus sub-block).
    """

    name: str
    capacity: int
    alpha: float
    beta: float
    contention: float = 1.0


@dataclass(frozen=True)
class Topology:
    """A machine: devices + links summarized into ordered comm tiers."""

    kind: str
    name: str
    tiers: tuple[CommTier, ...]
    devices: tuple[Device, ...] = ()
    links: tuple[Link, ...] = ()
    default_flop_rate: float = math.inf

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a topology needs at least one communication tier")
        caps = [t.capacity for t in self.tiers]
        if any(c < 0 for c in caps):
            raise ValueError("tier capacities must be >= 0 (0 = unbounded)")
        bounded = [c for c in caps if c > 0]
        if bounded != sorted(bounded):
            raise ValueError("tiers must be ordered innermost (smallest) first")
        if self.devices and self.capacity != len(self.devices):
            raise ValueError(
                f"outer tier capacity {self.capacity} != device count "
                f"{len(self.devices)}"
            )

    # -- validity predicate ---------------------------------------------- #

    @property
    def capacity(self) -> int | None:
        """Largest runnable p (None = unbounded uniform fleet)."""
        cap = self.tiers[-1].capacity
        return cap if cap > 0 else None

    @property
    def is_uniform(self) -> bool:
        return self.kind == "uniform"

    def validate_p(self, p: int) -> None:
        """Raise ``ValueError`` when the device set cannot seat p ranks."""
        if p < 1:
            raise ValueError(f"{self.name}: need at least one rank (got p={p})")
        cap = self.capacity
        if cap is not None and p > cap:
            raise ValueError(
                f"{self.name}: p={p} exceeds the topology's {cap} devices"
            )

    # -- tiered cost model ----------------------------------------------- #

    def tier_for(self, p: int) -> CommTier:
        """Smallest tier that holds p ranks (the cost contract's selector)."""
        self.validate_p(p)
        for tier in self.tiers:
            if tier.capacity == 0 or p <= tier.capacity:
                return tier
        raise AssertionError("validate_p guarantees a tier exists")

    def effective_alpha_beta(self, p: int) -> tuple[float, float]:
        """(α_eff, β_eff) for a p-rank job: tier latency, contended bandwidth."""
        tier = self.tier_for(p)
        return tier.alpha, tier.beta * tier.contention

    def slowest_flop_rate(self, p: int) -> float:
        """Rate of the slowest of the first p devices (compute critical path)."""
        self.validate_p(p)
        if not self.devices:
            return self.default_flop_rate
        return min(d.flop_rate for d in self.devices[:p])

    def predict_time(
        self, words: float, messages: float, *, p: int, flops: float = 0.0
    ) -> float:
        """Predicted time of critical-path (words, messages, flops) on p ranks."""
        alpha, beta = self.effective_alpha_beta(p)
        t = alpha * messages + beta * words
        rate = self.slowest_flop_rate(p)
        if flops > 0.0 and math.isfinite(rate):
            t += flops / rate
        return t

    def time_from_steps(self, step_msgs: np.ndarray, step_words: np.ndarray) -> float:
        """``Σ_steps max_r (α_eff·msgs_r + β_eff·words_r)`` from measured tallies.

        On the uniform topology this is *exactly* the historical flat α-β
        critical-path time (same expression, same float operations); other
        topologies substitute their effective tier parameters.
        """
        if step_msgs.size == 0:
            return 0.0
        alpha, beta = self.effective_alpha_beta(step_msgs.shape[1])
        return float((alpha * step_msgs + beta * step_words).max(axis=1).sum())

    # -- identity --------------------------------------------------------- #

    def cache_token(self) -> str:
        """Canonical content string for cache keys (params included)."""
        tiers = ";".join(
            f"{t.name}:{t.capacity}:{t.alpha!r}:{t.beta!r}:{t.contention!r}"
            for t in self.tiers
        )
        rates = sorted({d.flop_rate for d in self.devices} or {self.default_flop_rate})
        return f"{self.name}|{tiers}|rates={rates!r}"

    def describe(self) -> dict[str, object]:
        """JSON-friendly summary for CLI/serve payloads."""
        return {
            "kind": self.kind,
            "name": self.name,
            "capacity": self.capacity,
            "tiers": [
                {
                    "name": t.name,
                    "capacity": t.capacity,
                    "alpha": t.alpha,
                    "beta": t.beta,
                    "contention": t.contention,
                }
                for t in self.tiers
            ],
            "devices": len(self.devices),
            "links": len(self.links),
        }

    # -- builders --------------------------------------------------------- #

    @classmethod
    def uniform(cls, alpha: float = 1.0, beta: float = 1.0, p: int | None = None) -> Topology:
        """The paper's flat α-β machine; ``p=None`` leaves the fleet unbounded."""
        _check_positive(alpha=alpha, beta=beta)
        devices: tuple[Device, ...] = ()
        if p is not None:
            if p < 1:
                raise ValueError(f"uniform: device count must be >= 1 (got p={p})")
            devices = tuple(Device(i) for i in range(p))
        cap = 0 if p is None else p
        name = "uniform" if p is None else f"uniform:{p}"
        return cls(
            kind="uniform",
            name=name,
            tiers=(CommTier("all", cap, alpha, beta),),
            devices=devices,
        )

    @classmethod
    def fat_tree(
        cls,
        switches: int,
        hosts_per_switch: int,
        alpha: float = 1.0,
        beta: float = 1.0,
        oversubscription: float = 2.0,
    ) -> Topology:
        """Two-level fat-tree: edge switches under one (oversubscribed) core.

        Inside one switch a message crosses 2 links (host→edge→host);
        across switches it crosses 4 (host→edge→core→edge→host) and its
        words share the core bisection, modeled as the
        ``oversubscription`` contention factor on β.
        """
        if switches < 1 or hosts_per_switch < 1:
            raise ValueError("fat-tree: switches and hosts_per_switch must be >= 1")
        _check_positive(alpha=alpha, beta=beta, oversubscription=oversubscription)
        devices = tuple(Device(i) for i in range(switches * hosts_per_switch))
        links = tuple(
            Link(f"host{i}", f"edge{i // hosts_per_switch}", alpha, beta)
            for i in range(switches * hosts_per_switch)
        ) + tuple(
            Link(f"edge{s}", "core", alpha, beta * oversubscription)
            for s in range(switches)
        )
        return cls(
            kind="fat-tree",
            name=f"fat-tree:{switches}x{hosts_per_switch}",
            tiers=(
                CommTier("switch", hosts_per_switch, 2.0 * alpha, beta),
                CommTier(
                    "core",
                    switches * hosts_per_switch,
                    4.0 * alpha,
                    beta,
                    contention=oversubscription,
                ),
            ),
            devices=devices,
            links=links,
        )

    @classmethod
    def torus(
        cls, dims: Sequence[int], alpha: float = 1.0, beta: float = 1.0
    ) -> Topology:
        """k-dimensional torus with per-hop latency and bisection contention.

        A p-rank job runs in the smallest enclosing sub-block: latency is
        the sub-block diameter in hops, and all-to-all style traffic loads
        each bisection link with ``side/4`` flows (classic torus bisection
        counting), which is the contention factor on β.
        """
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValueError("torus: need at least one dimension, all sides >= 1")
        _check_positive(alpha=alpha, beta=beta)
        total = math.prod(dims)
        devices = tuple(Device(i) for i in range(total))
        links = _torus_links(dims, alpha, beta)
        tiers: list[CommTier] = []
        for side in range(1, max(dims) + 1):
            shape = tuple(min(side, d) for d in dims)
            cap = math.prod(shape)
            if tiers and cap == tiers[-1].capacity:
                continue
            hops = sum(s - 1 for s in shape)
            tiers.append(
                CommTier(
                    name="node" if cap == 1 else f"block:{'x'.join(map(str, shape))}",
                    capacity=cap,
                    alpha=alpha * max(1, hops),
                    beta=beta,
                    contention=max(1.0, max(shape) / 4.0),
                )
            )
        return cls(
            kind="torus",
            name=f"torus:{'x'.join(map(str, dims))}",
            tiers=tuple(tiers),
            devices=devices,
            links=links,
        )

    @classmethod
    def gpu_cluster(
        cls,
        nodes: int,
        gpus_per_node: int,
        alpha: float = 1.0,
        beta: float = 1.0,
        gpu_flop_rate: float = 8.0,
    ) -> Topology:
        """Multi-GPU nodes: NVLink-class links inside, a network between.

        Intra-node links run at a tenth of the base α/β; leaving the node
        costs ``4α`` per message at full β.  Devices carry a *finite* flop
        rate, so (unlike the pure-communication builders) the compute term
        ``flops / rate`` participates in predicted time.
        """
        if nodes < 1 or gpus_per_node < 1:
            raise ValueError("gpu: nodes and gpus_per_node must be >= 1")
        _check_positive(alpha=alpha, beta=beta, gpu_flop_rate=gpu_flop_rate)
        total = nodes * gpus_per_node
        devices = tuple(Device(i, kind="gpu", flop_rate=gpu_flop_rate) for i in range(total))
        links = tuple(
            Link(f"gpu{i}", f"node{i // gpus_per_node}", 0.1 * alpha, 0.1 * beta)
            for i in range(total)
        ) + tuple(Link(f"node{r}", "net", 4.0 * alpha, beta) for r in range(nodes))
        return cls(
            kind="gpu",
            name=f"gpu:{nodes}x{gpus_per_node}",
            tiers=(
                CommTier("nvlink", gpus_per_node, 0.1 * alpha, 0.1 * beta),
                CommTier("network", total, 4.0 * alpha, beta),
            ),
            devices=devices,
            links=links,
            default_flop_rate=gpu_flop_rate,
        )

    @classmethod
    def parse(cls, spec: str, alpha: float = 1.0, beta: float = 1.0) -> Topology:
        """Build a topology from a CLI spec string.

        Grammar: ``uniform`` | ``uniform:P`` | ``fat-tree:SxH`` |
        ``torus:D1xD2[x...]`` | ``gpu:NxG``.  ``alpha``/``beta`` set the
        base link parameters of whichever family is named.
        """
        family, _, rest = spec.partition(":")
        if family == "uniform":
            p = _parse_dims(spec, rest, exactly=1)[0] if rest else None
            return cls.uniform(alpha, beta, p=p)
        if family == "fat-tree":
            s, h = _parse_dims(spec, rest, exactly=2)
            return cls.fat_tree(s, h, alpha, beta)
        if family == "torus":
            return cls.torus(_parse_dims(spec, rest), alpha, beta)
        if family in ("gpu", "gpu-cluster"):
            n, g = _parse_dims(spec, rest, exactly=2)
            return cls.gpu_cluster(n, g, alpha, beta)
        raise ValueError(
            f"unknown topology family {family!r} in {spec!r}; "
            f"choose from {TOPOLOGY_FAMILIES}"
        )


def _check_positive(**params: float) -> None:
    for name, value in params.items():
        if not value > 0.0:
            raise ValueError(f"topology parameter {name} must be > 0 (got {value})")


def _parse_dims(spec: str, rest: str, exactly: int | None = None) -> tuple[int, ...]:
    try:
        dims = tuple(int(part) for part in rest.split("x"))
    except ValueError:
        raise ValueError(
            f"malformed topology spec {spec!r}: dims must be integers like 16x4"
        ) from None
    if exactly is not None and len(dims) != exactly:
        raise ValueError(
            f"malformed topology spec {spec!r}: expected {exactly} "
            f"'x'-separated integer(s)"
        )
    if any(d < 1 for d in dims):
        raise ValueError(f"malformed topology spec {spec!r}: dims must be >= 1")
    return dims


def _torus_links(dims: tuple[int, ...], alpha: float, beta: float) -> tuple[Link, ...]:
    """+1-neighbor (wraparound) links of the full torus, one per edge."""
    total = math.prod(dims)
    strides = []
    acc = 1
    for d in reversed(dims):
        strides.append(acc)
        acc *= d
    strides.reverse()

    def coords(i: int) -> tuple[int, ...]:
        return tuple((i // strides[axis]) % dims[axis] for axis in range(len(dims)))

    links = []
    for i in range(total):
        cs = coords(i)
        for axis, side in enumerate(dims):
            if side == 1:
                continue
            nb = list(cs)
            nb[axis] = (cs[axis] + 1) % side
            j = sum(nb[a] * strides[a] for a in range(len(dims)))
            links.append(Link(f"t{i}", f"t{j}", alpha, beta))
    return tuple(links)
