"""E6/E7/E10 — Table I: parallel bandwidth, measured vs bounds.

Runs the attaining algorithms on the simulated machine and compares the
critical-path word counts against the Table I cells:

* classical column — Cannon (2D), 3D, 2.5D (+ SUMMA for the lg-factor
  contrast);
* Strassen-like column — CAPS under all-BFS (unlimited memory) and
  DFS-interleaved (memory-constrained) schedules.
"""

from __future__ import annotations

import math

from repro.core.bounds import LG7, parallel_io_bound, table1_cell
from repro.parallel.base import ParallelConfig, get_parallel
from repro.util.matgen import integer_matrix
from repro.util.numutil import fit_power_law

__all__ = [
    "classical_2d_scaling",
    "threed_scaling",
    "two5d_c_sweep",
    "caps_scaling",
    "caps_memory_sweep",
    "table1_summary",
]


def _inputs(n: int):
    return integer_matrix(n, seed=11), integer_matrix(n, seed=13)


def _execute(name, A, B, *, p, c=1, schedule=None):
    """Run one registry algorithm through the planner-first config API."""
    scheme = "strassen" if get_parallel(name).uses_scheme else None
    cfg = ParallelConfig(n=A.shape[0], p=p, c=c, scheme=scheme, schedule=schedule)
    return get_parallel(name).execute(A, B, cfg)


def classical_2d_scaling(n: int = 64, qs=(2, 4, 8, 16)) -> dict:
    """Cannon & SUMMA vs the 2D cell ``Ω(n²/√p)`` — exponent fit in p."""
    A, B = _inputs(n)
    rows, ps, ws = [], [], []
    for q in qs:
        if n % q:
            continue
        cell = table1_cell("2D", "classical", n, q * q)
        for alg in ("cannon", "summa"):
            r = _execute(alg, A, B, p=q * q)
            ok = bool((r.C == A @ B).all())
            rows.append(
                {
                    "algorithm": alg,
                    "p": q * q,
                    "measured_words": r.critical_words,
                    "bound": cell.bound,
                    "measured/bound": r.critical_words / cell.bound,
                    "mem_peak": r.max_mem_peak,
                    "verified": ok,
                }
            )
            if alg == "cannon":
                ps.append(q * q)
                ws.append(r.critical_words)
    e, _ = fit_power_law(ps, ws)
    return {"rows": rows, "cannon_p_exponent": e, "expected_p_exponent": -0.5, "n": n}


def threed_scaling(n: int = 64, qs=(2, 4)) -> dict:
    """3D algorithm vs the 3D cell ``Ω(n²/p^(2/3))``."""
    A, B = _inputs(n)
    rows, ps, ws = [], [], []
    for q in qs:
        p = q**3
        cell = table1_cell("3D", "classical", n, p)
        r = _execute("3d", A, B, p=p)
        rows.append(
            {
                "p": p,
                "measured_words": r.critical_words,
                "bound": cell.bound,
                "measured/bound": r.critical_words / cell.bound,
                "mem_peak": r.max_mem_peak,
                "verified": bool((r.C == A @ B).all()),
            }
        )
        ps.append(p)
        ws.append(r.critical_words)
    e, _ = fit_power_law(ps, ws)
    return {"rows": rows, "p_exponent": e, "expected_p_exponent": -2.0 / 3.0, "n": n}


def two5d_c_sweep(n: int = 64, q: int = 8, cs=(1, 2, 4, 8)) -> dict:
    """2.5D at fixed grid q, growing replication c (p = q²c): the Table I
    row-3 cell predicts words ∝ 1/√(c·p) = 1/(√c·q·√c) ∝ c⁻¹ at fixed q."""
    A, B = _inputs(n)
    rows, xs, ws = [], [], []
    for c in cs:
        if q % c:
            continue
        p = q * q * c
        cell = table1_cell("2.5D", "classical", n, p, c)
        r = _execute("2.5d", A, B, p=p, c=c)
        rows.append(
            {
                "c": c,
                "p": p,
                "measured_words": r.critical_words,
                "bound": cell.bound,
                "measured/bound": r.critical_words / cell.bound,
                "mem_peak": r.max_mem_peak,
                "M_regime": cell.memory,
                "verified": bool((r.C == A @ B).all()),
            }
        )
        xs.append(c * p)
        ws.append(r.critical_words)
    e, _ = fit_power_law(xs, ws)
    return {"rows": rows, "cp_exponent": e, "expected_cp_exponent": -0.5, "n": n, "q": q}


def caps_scaling(n0_factor: int = 8, ells=(1, 2)) -> dict:
    """CAPS all-BFS vs the unlimited-memory shape ``n²/p^(2/ω₀)``.

    n grows with ℓ to satisfy the layout divisibility (n = f·2^ℓ·7^⌈ℓ/2⌉),
    so the comparison normalizes by n².
    """
    rows = []
    for ell in ells:
        p = 7**ell
        n = n0_factor * (2**ell) * (7 ** math.ceil(ell / 2))
        A, B = _inputs(n)
        r = _execute("caps", A, B, p=p)
        shape = n * n / p ** (2.0 / LG7)
        rows.append(
            {
                "ell": ell,
                "p": p,
                "n": n,
                "measured_words": r.critical_words,
                "n^2/p^(2/w0)": shape,
                "measured/shape": r.critical_words / shape,
                "mem_peak": r.max_mem_peak,
                "verified": bool((r.C == A @ B).all()),
            }
        )
    return {"rows": rows}


def caps_memory_sweep(n: int = 112, ell: int = 2) -> dict:
    """E7: CAPS schedules trade memory for bandwidth along Corollary 1.2.

    All schedules with ℓ B's and up to 2 D's; for each, measured words and
    measured peak memory vs the bound ``(n/√M)^ω₀·M/p`` at M = measured
    peak — the measured points should run parallel to the bound curve.
    """
    A, B = _inputs(n)
    p = 7**ell
    schedules = ["BB", "DBB", "BDB", "BBD", "DDBB", "DBDB", "DBBD"]
    rows = []
    for sched in schedules:
        if sched.count("B") != ell:
            continue
        try:
            r = _execute("caps", A, B, p=p, schedule=sched)
        except ValueError:
            continue
        M = r.max_mem_peak
        bound = parallel_io_bound(n, M, p, LG7)
        rows.append(
            {
                "schedule": sched,
                "measured_words": r.critical_words,
                "mem_peak": M,
                "bound_at_peak": bound,
                "measured/bound": r.critical_words / bound,
                "verified": bool((r.C == A @ B).all()),
            }
        )
    return {"rows": rows, "n": n, "p": p}


def table1_summary(n: int = 64) -> list[dict]:
    """All six Table I cells evaluated at one (n, p) with the attaining
    algorithm's measured words beside each bound."""
    out = []
    A, B = _inputs(n)
    # classical 2D at p=16
    r = _execute("cannon", A, B, p=16)
    cell = table1_cell("2D", "classical", n, 16)
    out.append(_cell_row(cell, r.critical_words, "cannon"))
    # classical 3D at p=64
    r = _execute("3d", A, B, p=64)
    cell = table1_cell("3D", "classical", n, 64)
    out.append(_cell_row(cell, r.critical_words, "3d"))
    # classical 2.5D at p=64 (q=4, c=4)
    r = _execute("2.5d", A, B, p=64, c=4)
    cell = table1_cell("2.5D", "classical", n, 64, 4)
    out.append(_cell_row(cell, r.critical_words, "2.5d"))
    # strassen-like cells at p=7 (n divisible appropriately)
    n7 = 56
    A7, B7 = _inputs(n7)
    r = _execute("caps", A7, B7, p=7, schedule="DDB")
    cell = table1_cell("2D", "strassen-like", n7, 7)
    out.append(_cell_row(cell, r.critical_words, "caps(DDB)"))
    r = _execute("caps", A7, B7, p=7, schedule="DB")
    cell = table1_cell("3D", "strassen-like", n7, 7)
    out.append(_cell_row(cell, r.critical_words, "caps(DB)"))
    r = _execute("caps", A7, B7, p=7, schedule="B")
    cell = table1_cell("2.5D", "strassen-like", n7, 7, 2)
    out.append(_cell_row(cell, r.critical_words, "caps(B)"))
    return out


def _cell_row(cell, measured: int, alg: str) -> dict:
    return {
        "regime": cell.regime,
        "class": cell.algorithm_class,
        "bound": cell.bound,
        "p_exponent": cell.exponent_of_p,
        "measured_words": measured,
        "algorithm": alg,
        "attained_by(paper)": cell.attained_by,
    }
