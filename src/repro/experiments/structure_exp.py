"""E4/E5/E11 — Figure 2/3 structural reproduction.

The paper's figures are schematics of graph objects; reproducing them means
building the objects and verifying every labeled property: sizes, degrees,
level profiles, connectivity, the recursion tree, and the §5.1.1
connectivity dichotomy across schemes.

All graph construction routes through the engine cache: each (scheme, k)
object is built at most once per cache lifetime, no matter how many reports
ask for it.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.analysis import (
    check_claim_5_1,
    check_dec1_connected,
    structure_report,
)
from repro.cdag.schemes import available_schemes, get_scheme
from repro.cdag.strassen_cdag import recursion_tree_partition
from repro.engine.builders import cached_dec_graph, cached_h_graph
from repro.engine.cache import EngineCache

__all__ = ["figure2_report", "figure3_tree_report", "dec1_connectivity_table"]


def figure2_report(
    scheme: str = "strassen", k: int = 4, cache: EngineCache | None = None
) -> dict:
    """The four panels of Figure 2 as measured statistics (cached builds)."""
    return structure_report(
        scheme,
        k,
        build_dec=lambda s,
        kk: cached_dec_graph(s, kk, cache=cache),
        build_h=lambda s,
        kk: cached_h_graph(s, kk, cache=cache),
    )


def figure3_tree_report(
    scheme: str = "strassen", k: int = 4, cache: EngineCache | None = None
) -> dict:
    """Figure 3's recursion tree T_k: level-by-level structure checks."""
    s = get_scheme(scheme)
    c0, t0 = s.c_blocks, s.t0
    tree = recursion_tree_partition(s, k)
    g = cached_dec_graph(s, k, cache=cache)
    rows = []
    total = 0
    for i, level in enumerate(tree, start=1):
        n_nodes, node_size = level.shape
        rows.append(
            {
                "tree_level": i,
                "n_nodes": n_nodes,
                "expected_nodes": c0 ** (k - i + 1),
                "|V_u|": node_size,
                "expected_size": t0 ** (i - 1),
            }
        )
        total += level.size
    all_ids = np.concatenate([lvl.ravel() for lvl in tree])
    # Partition <=> every vertex id covered exactly once: a bincount presence
    # check is O(V) (np.unique's hash/sort was the report's hot spot).
    counts = np.bincount(all_ids, minlength=g.n_vertices)
    return {
        "rows": rows,
        "partition_ok": bool(
            total == g.n_vertices
            and counts.size == g.n_vertices
            and counts.max() == 1
        ),
        "scheme": scheme,
        "k": k,
    }


def dec1_connectivity_table(cache: EngineCache | None = None) -> list[dict]:
    """§5.1.1: Dec₁C connected for fast schemes, disconnected for classical."""
    rows = []
    for name in available_schemes():
        s = get_scheme(name)
        g1 = cached_dec_graph(s, 1, cache=cache)
        connected = check_dec1_connected(s, g1=g1)
        check_claim_5_1(s, g=g1)  # raises on violation
        rows.append(
            {
                "scheme": name,
                "omega0": s.omega0,
                "dec1_connected": connected,
                "strassen_like": connected,  # the §5.1.1 criterion
            }
        )
    return rows
