"""E4/E5/E11 — Figure 2/3 structural reproduction.

The paper's figures are schematics of graph objects; reproducing them means
building the objects and verifying every labeled property: sizes, degrees,
level profiles, connectivity, the recursion tree, and the §5.1.1
connectivity dichotomy across schemes.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.analysis import (
    check_claim_5_1,
    check_dec1_connected,
    check_fact_4_2,
    check_fact_4_6,
    structure_report,
)
from repro.cdag.schemes import available_schemes, get_scheme
from repro.cdag.strassen_cdag import dec_graph, recursion_tree_partition

__all__ = ["figure2_report", "figure3_tree_report", "dec1_connectivity_table"]


def figure2_report(scheme: str = "strassen", k: int = 4) -> dict:
    """The four panels of Figure 2 as measured statistics."""
    return structure_report(scheme, k)


def figure3_tree_report(scheme: str = "strassen", k: int = 4) -> dict:
    """Figure 3's recursion tree T_k: level-by-level structure checks."""
    s = get_scheme(scheme)
    c0, m0 = s.n0 * s.n0, s.m0
    tree = recursion_tree_partition(s, k)
    g = dec_graph(s, k)
    rows = []
    total = 0
    for i, level in enumerate(tree, start=1):
        n_nodes, node_size = level.shape
        rows.append(
            {
                "tree_level": i,
                "n_nodes": n_nodes,
                "expected_nodes": c0 ** (k - i + 1),
                "|V_u|": node_size,
                "expected_size": m0 ** (i - 1),
            }
        )
        total += level.size
    all_ids = np.concatenate([lvl.ravel() for lvl in tree])
    return {
        "rows": rows,
        "partition_ok": bool(
            total == g.n_vertices and len(np.unique(all_ids)) == total
        ),
        "scheme": scheme,
        "k": k,
    }


def dec1_connectivity_table() -> list[dict]:
    """§5.1.1: Dec₁C connected for fast schemes, disconnected for classical."""
    rows = []
    for name in available_schemes():
        s = get_scheme(name)
        connected = check_dec1_connected(s)
        check_claim_5_1(s)  # raises on violation
        rows.append(
            {
                "scheme": name,
                "omega0": s.omega0,
                "dec1_connected": connected,
                "strassen_like": connected,  # the §5.1.1 criterion
            }
        )
    return rows
