"""E12 — strong scaling vs the memory-independent floor (arXiv:1202.3177).

The Table-I story with p as the moving part: at a *fixed* per-processor
memory M, every algorithm's communication scales perfectly (∝ 1/p) only up
to ``p* = (n/√M)^ω₀`` — beyond that the memory-independent floor
``Ω(n²/p^(2/ω₀))`` binds, and more processors stop helping.  This harness
runs every registered parallel algorithm across its valid p-grid (through
the cached engine sweep) and sets the measured critical-path words beside

* the memory-dependent bound evaluated **at the fixed M** (the perfect
  strong-scaling line),
* the memory-independent floor, and
* the crossover point p* — so the floor crossover is visible per
  algorithm class.

CAPS is the algorithm built to run down to the Strassen-like floor
``n²/p^(2/ω₀)``; the classical algorithms face the deeper-p classical
floor ``n²/p^(2/3)``.
"""

from __future__ import annotations

from repro.cdag.schemes import get_scheme
from repro.core.bounds import perfect_scaling_limit, scaling_regime
from repro.engine.cache import EngineCache
from repro.engine.scaling import ScalingSpec, scaling_sweep
from repro.parallel.base import available_parallel

__all__ = ["strong_scaling_experiment"]


def strong_scaling_experiment(
    n: int = 56,
    M: int | None = None,
    algos: tuple[str, ...] | None = None,
    p_max: int = 64,
    cs: tuple[int, ...] = (1, 2, 4),
    scheme: str = "strassen",
    cache: EngineCache | None = None,
) -> dict:
    """Measured words vs both bounds at fixed M, for every registered algorithm.

    ``M`` defaults to the 2D regime at the *largest* p in the budget
    (``n²·p_max^(-1)`` rounded up) so that the p-grid actually straddles
    the crossover for the classical algorithms.  Returns rows plus the
    per-class crossover points ``p*``.

    The runs themselves are not memory-limited, so the fixed-M
    memory-dependent bound only *applies* to a row when the run actually
    stayed within M words per rank; each row carries ``bound_applies``
    (``mem_peak ≤ M``) saying so — a small-p run that used Θ(n²/p) ≫ M
    words is not bound by the M-limited curve it is plotted against.
    The memory-independent floor needs no M and binds every row.
    """
    algos = tuple(algos) if algos is not None else tuple(available_parallel())
    if M is None:
        M = max(1, -(-(n * n) // p_max))  # ceil(n²/p_max)
    spec = ScalingSpec(algos=algos, n=n, p_max=p_max, cs=cs, scheme=scheme)
    report = scaling_sweep(spec, cache=cache)

    rows = []
    for r in report.rows:
        w0 = r["omega0"]
        p = r["p"]
        regime = scaling_regime(n, p, M, w0)
        bound_applies = r["mem_peak"] <= M
        rows.append(
            {
                "algorithm": r["label"],
                "class": r["class"],
                "p": p,
                "c": r["c"],
                "measured_words": r["measured_words"],
                "mem_peak": r["mem_peak"],
                "bound_md_at_M": regime.memory_dependent,
                "bound_mi": regime.memory_independent,
                "lower_bound": regime.bound,
                "bound_applies": bound_applies,
                "binding": regime.binding,
                "beyond_floor": p > regime.p_limit,
                "measured/lower": r["measured_words"] / regime.bound,
                "verified": r["verified"],
            }
        )

    sch = get_scheme(scheme)
    crossover = {
        "classical": perfect_scaling_limit(n, M, 3.0),
        "strassen-like": perfect_scaling_limit(n, M, sch.omega0),
    }
    return {"rows": rows, "n": n, "M": M, "p_limit": crossover}


def main() -> None:  # pragma: no cover - manual harness entry
    from repro.experiments.report import render_table

    result = strong_scaling_experiment()
    print(
        render_table(
            result["rows"],
            title=(
                f"[E12] strong scaling at n={result['n']}, fixed M={result['M']}: "
                f"floors at p*={result['p_limit']}"
            ),
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
