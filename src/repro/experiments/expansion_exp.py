"""E3 — the Main Lemma experiment: ``h(Dec_k C) = Θ((c₀/m₀)^k)`` (Lemma 4.3).

For each depth k we sandwich the edge expansion between the certified
spectral lower bound and the best constructive cut (Fiedler sweep / decode
cone), and check both sides decay geometrically with ratio ≈ c₀/m₀.
"""

from __future__ import annotations

import math

from repro.cdag.schemes import get_scheme
from repro.cdag.strassen_cdag import dec_graph
from repro.core.expansion import (
    decode_cone_upper_bound,
    estimate_expansion,
    exact_edge_expansion,
)
from repro.util.numutil import fit_power_law

__all__ = ["expansion_decay", "small_set_profile"]


def expansion_decay(scheme: str = "strassen", k_max: int = 5, spectral_upto: int = 5) -> dict:
    """Two-sided h(Dec_k C) estimates for k = 1..k_max plus decay fits.

    ``spectral_upto`` caps the eigen-solves (they dominate run time); deeper
    graphs get the decode-cone upper bound only, which is the quantity the
    decay fit uses throughout.
    """
    s = get_scheme(scheme)
    ratio = (s.n0 * s.n0) / s.m0
    rows = []
    ks, uppers = [], []
    for k in range(1, k_max + 1):
        g = dec_graph(s, k)
        if g.n_vertices <= 22:
            h, mask = exact_edge_expansion(g)
            lower = upper = h
            method = "exact"
            witness = int(mask.sum())
        elif k <= spectral_upto:
            est = estimate_expansion(g, s, k)
            lower, upper = est.lower, est.upper
            method = est.method
            witness = est.witness_size
        else:
            upper, mask = decode_cone_upper_bound(g, s, k)
            lower = float("nan")
            method = "cone-only"
            witness = int(mask.sum())
        rows.append(
            {
                "k": k,
                "V": g.n_vertices,
                "lower": lower,
                "upper": upper,
                "(c0/m0)^k": ratio**k,
                "upper/(c0/m0)^k": upper / ratio**k,
                "method": method,
                "witness_size": witness,
            }
        )
        ks.append(k)
        uppers.append(upper)
    # geometric-decay fit: upper ≈ C · r^k  →  log-linear in k
    if len(ks) >= 2:
        e, _ = fit_power_law([math.e**k for k in ks], uppers)  # slope in log-k space
        decay = math.e**e
    else:
        decay = float("nan")
    return {
        "rows": rows,
        "fitted_decay_per_level": decay,
        "expected_decay": ratio,
        "scheme": scheme,
    }


def small_set_profile(scheme: str = "strassen", k: int = 5) -> dict:
    """h_s behaviour: decode cones of increasing depth inside one Dec_k C.

    Depth-j cones are the size-Θ(m₀^j) witnesses whose expansion ≈
    (c₀/m₀)^j — the small-set structure Corollary 4.4 exploits.
    """
    from repro.core.expansion import decode_cone_mask, expansion_of_cut

    s = get_scheme(scheme)
    g = dec_graph(s, k)
    ratio = (s.n0 * s.n0) / s.m0
    # pick the branch whose W column is sparsest (cheapest cone boundary)
    col_nnz = (s.W != 0).sum(axis=0)
    branch = int(col_nnz.argmin())
    rows = []
    for depth in range(1, k + 1):
        mask = decode_cone_mask(s, k, branch=branch, depth=depth)
        size = int(mask.sum())
        if size > g.n_vertices // 2 or size == 0:
            continue
        h = expansion_of_cut(g, mask)
        rows.append(
            {
                "cone_depth": depth,
                "set_size": size,
                "h_of_cut": h,
                "(c0/m0)^depth": ratio**depth,
                "ratio": h / ratio**depth,
            }
        )
    return {"rows": rows, "scheme": scheme, "k": k, "branch": branch}
