"""E3 — the Main Lemma experiment: ``h(Dec_k C) = Θ((c₀/t₀)^k)`` (Lemma 4.3).

For each depth k we sandwich the edge expansion between the certified
spectral lower bound and the best constructive cut (Fiedler sweep / decode
cone), and check both sides decay geometrically with ratio ≈ c₀/m₀.

Graphs, spectra, and estimates all flow through the engine cache, so repeat
runs (and the other experiments analyzing the same ``Dec_k C``) skip the
builds and eigensolves entirely.
"""

from __future__ import annotations

import math

from repro.cdag.schemes import get_scheme
from repro.core.expansion import EXACT_LIMIT
from repro.engine.builders import cached_dec_graph, cached_estimate
from repro.engine.cache import EngineCache
from repro.util.numutil import fit_power_law

__all__ = ["expansion_decay", "small_set_profile"]


def expansion_decay(
    scheme: str = "strassen",
    k_max: int = 5,
    spectral_upto: int = 5,
    cache: EngineCache | None = None,
    jobs: int = 1,
) -> dict:
    """Two-sided h(Dec_k C) estimates for k = 1..k_max plus decay fits.

    Rows whose graph fits under :data:`EXACT_LIMIT` are solved exactly —
    with the v2 engine (limit 28) that now reaches past ``Dec_1``: e.g.
    ``Dec_2`` of the ⟨1,2,2⟩-type rectangular schemes gets an exact row
    where it previously leaned on the spectral/cone sandwich alone.
    ``spectral_upto`` caps the eigen-solves (they dominate cold run time);
    deeper graphs get the decode-cone upper bound only, which is the quantity
    the decay fit uses throughout.  ``cache`` overrides the process default;
    ``jobs`` shards the exact rows' subset search (results are identical for
    any value).
    """
    s = get_scheme(scheme)
    ratio = s.c_blocks / s.t0
    rows = []
    ks, uppers = [], []
    for k in range(1, k_max + 1):
        g = cached_dec_graph(s, k, cache=cache)
        if g.n_vertices <= EXACT_LIMIT:
            policy = "exact"
        elif k <= spectral_upto:
            policy = "spectral"
        else:
            policy = "cone"
        est = cached_estimate(s, k, policy=policy, cache=cache, jobs=jobs)
        rows.append(
            {
                "k": k,
                "V": g.n_vertices,
                "lower": est.lower,
                "upper": est.upper,
                "(c0/t0)^k": ratio**k,
                "upper/(c0/t0)^k": est.upper / ratio**k,
                "method": est.method,
                "witness_size": est.witness_size,
            }
        )
        ks.append(k)
        uppers.append(est.upper)
    # geometric-decay fit: upper ≈ C · r^k  →  log-linear in k.  Disconnected
    # Dec graphs (some rectangular schemes) have exact h = 0, which a log-log
    # fit cannot ingest — report NaN instead of crashing the sweep.
    if len(ks) >= 2 and all(u > 0 for u in uppers):
        e, _ = fit_power_law([math.e**k for k in ks], uppers)  # slope in log-k space
        decay = math.e**e
    else:
        decay = float("nan")
    return {
        "rows": rows,
        "fitted_decay_per_level": decay,
        "expected_decay": ratio,
        "scheme": scheme,
    }


def small_set_profile(
    scheme: str = "strassen", k: int = 5, cache: EngineCache | None = None
) -> dict:
    """h_s behaviour: decode cones of increasing depth inside one Dec_k C.

    Depth-j cones are the size-Θ(t₀^j) witnesses whose expansion ≈
    (c₀/t₀)^j — the small-set structure Corollary 4.4 exploits.  The whole
    profile is a deterministic artifact of (scheme, k), so it is cached like
    the graphs and spectra it derives from.
    """
    from repro.core.expansion import decode_cone_mask, expansion_of_cut
    from repro.engine.cache import cache_key, default_cache

    s = get_scheme(scheme)
    ratio = s.c_blocks / s.t0
    cache = cache if cache is not None else default_cache()
    key = cache_key("small_set_profile", s, k=k)
    result = cache.get_object(key)
    if result is not None:
        return result
    data = cache.get_arrays(key)
    if data is not None:
        branch = int(data["branch"])
        rows = [
            {
                "cone_depth": int(depth),
                "set_size": int(size),
                "h_of_cut": float(h),
                "(c0/t0)^depth": ratio ** int(depth),
                "ratio": float(h) / ratio ** int(depth),
            }
            for depth, size, h in zip(data["depths"], data["sizes"], data["hs"])
        ]
    else:
        cache.count_build()
        g = cached_dec_graph(s, k, cache=cache)
        # pick the branch whose W column is sparsest (cheapest cone boundary)
        col_nnz = (s.W != 0).sum(axis=0)
        branch = int(col_nnz.argmin())
        rows = []
        for depth in range(1, k + 1):
            mask = decode_cone_mask(s, k, branch=branch, depth=depth)
            size = int(mask.sum())
            if size > g.n_vertices // 2 or size == 0:
                continue
            h = expansion_of_cut(g, mask)
            rows.append(
                {
                    "cone_depth": depth,
                    "set_size": size,
                    "h_of_cut": h,
                    "(c0/t0)^depth": ratio**depth,
                    "ratio": h / ratio**depth,
                }
            )
        import numpy as np

        cache.put_arrays(
            key,
            {
                "branch": np.int64(branch),
                "depths": np.array([r["cone_depth"] for r in rows], dtype=np.int64),
                "sizes": np.array([r["set_size"] for r in rows], dtype=np.int64),
                "hs": np.array([r["h_of_cut"] for r in rows], dtype=np.float64),
            },
        )
    result = {"rows": rows, "scheme": scheme, "k": k, "branch": branch}
    cache.put_object(key, result)
    return result
