"""Experiment harnesses regenerating each of the paper's tables and figures.

Each module maps to experiment ids in DESIGN.md §4:

* :mod:`repro.experiments.seq_io` — E1/E2 (Eq. 1, Thm 1.1, Thm 1.3)
* :mod:`repro.experiments.expansion_exp` — E3 (Lemma 4.3, Cor. 4.4)
* :mod:`repro.experiments.structure_exp` — E4/E5/E11 (Figs. 2–3, §5.1.1)
* :mod:`repro.experiments.table1` — E6/E7/E10 (Table I, §6.1)
* :mod:`repro.experiments.latency_exp` — E8 (footnote 8)
* :mod:`repro.experiments.strong_scaling` — E12 (memory-independent floor
  and perfect strong-scaling range, arXiv:1202.3177)
* :mod:`repro.experiments.report` — plain-text table rendering

Graph-heavy experiments build through :mod:`repro.engine` (content-addressed
cache + parallel grid runner); ``python -m repro sweep`` and
``python -m repro scaling`` expose the same sweeps from the command line.
"""

from repro.experiments.report import render_table

__all__ = ["render_table"]
