"""E1/E2 — sequential I/O experiments (Eq. 1, Theorem 1.1, Theorem 1.3).

Measured words moved by the depth-first implementations versus the paper's
bound expressions, as sweeps over n, over M, and over schemes (ω₀).
"""

from __future__ import annotations


from repro.algorithms.io_classical import blocked_io, classical_io_bound_shape, recursive_io
from repro.algorithms.io_strassen import dfs_io, dfs_io_model
from repro.cdag.schemes import get_scheme
from repro.core.bounds import sequential_io_bound, sequential_io_upper
from repro.util.numutil import fit_power_law

__all__ = ["n_sweep", "m_sweep", "omega_sweep", "cutoff_ablation"]


def n_sweep(
    scheme: str = "strassen", M: int = 192, t_range=range(4, 10), simulate_upto: int = 512
) -> dict:
    """IO(n) at fixed M: measured vs ``(n/√M)^ω₀·M`` (Thm 1.1 / 1.3).

    Uses the full simulation where affordable and the exact model beyond
    (they are tested equal); returns rows plus the fitted n-exponent.
    """
    s = get_scheme(scheme)
    base = 8
    rows = []
    ns, ws = [], []
    for t in t_range:
        n = base * s.n0**t
        runner = dfs_io if n <= simulate_upto else dfs_io_model
        rep = runner(n, M, s)
        bound = sequential_io_bound(n, M, s.omega0)
        upper = sequential_io_upper(n, M, s.omega0, s.n0, s.t0)
        rows.append(
            {
                "n": n,
                "measured_words": rep.words,
                "lower_bound": bound,
                "upper_form": upper,
                "measured/lower": rep.words / bound,
                "engine": "sim" if n <= simulate_upto else "model",
            }
        )
        ns.append(n)
        ws.append(rep.words)
    exponent, coeff = fit_power_law(ns[-4:], ws[-4:])
    return {
        "rows": rows,
        "fit_exponent": exponent,
        "expected_exponent": s.omega0,
        "scheme": scheme,
        "M": M,
    }


def m_sweep(scheme: str = "strassen", n: int = 4096, bases=(4, 8, 16, 32, 64)) -> dict:
    """IO(M) at fixed n: the bound predicts slope ``1 − ω₀/2`` in M."""
    s = get_scheme(scheme)
    rows = []
    Ms, ws = [], []
    for b in bases:
        M = 3 * b * b
        rep = dfs_io_model(n, M, s)
        bound = sequential_io_bound(n, M, s.omega0)
        rows.append(
            {
                "M": M,
                "base": b,
                "measured_words": rep.words,
                "lower_bound": bound,
                "measured/lower": rep.words / bound,
            }
        )
        Ms.append(M)
        ws.append(rep.words)
    exponent, _ = fit_power_law(Ms, ws)
    return {
        "rows": rows,
        "fit_exponent": exponent,
        "expected_exponent": 1 - s.omega0 / 2,
        "scheme": scheme,
        "n": n,
    }


def omega_sweep(M: int = 192, depth: int = 9) -> dict:
    """Theorem 1.3 across schemes: the measured n-exponent tracks each ω₀."""
    rows = []
    for name in ("strassen", "winograd", "strassen2x", "hybrid4", "classical2"):
        s = get_scheme(name)
        t_hi = depth if s.n0 == 2 else max(depth // 2, 5)
        ns = [8 * s.n0**t for t in range(t_hi - 3, t_hi + 1)]
        ws = [dfs_io_model(n, M, s).words for n in ns]
        e, _ = fit_power_law(ns, ws)
        rows.append(
            {
                "scheme": name,
                "n0": s.n0,
                "t0": s.t0,
                "omega0": s.omega0,
                "fit_exponent": e,
                "error": abs(e - s.omega0),
                "max_n": ns[-1],
            }
        )
    return {"rows": rows, "M": M}


def classical_comparison(M: int = 192, n: int = 128) -> dict:
    """Classical implementations vs the Hong–Kung shape at one point."""
    rows = [
        {
            "algorithm": "blocked",
            "measured_words": blocked_io(n, M).words,
        },
        {
            "algorithm": "cache-oblivious",
            "measured_words": recursive_io(n, M).words,
        },
    ]
    shape = classical_io_bound_shape(n, M)
    for r in rows:
        r["n^3/sqrt(M)"] = shape
        r["ratio"] = r["measured_words"] / shape
    return {"rows": rows, "n": n, "M": M}


def cutoff_ablation(scheme: str = "strassen", n: int = 512, M: int = 3 * 32 * 32) -> dict:
    """E1 ablation: recursion cutoff vs I/O (largest feasible base wins)."""
    s = get_scheme(scheme)
    rows = []
    base = n
    feasible = []
    while base >= 1:
        if 3 * base * base <= M:
            feasible.append(base)
        if base % s.n0:
            break
        base //= s.n0
    for b in feasible:
        rep = dfs_io_model(n, M, s, base=b)
        rows.append({"base": b, "measured_words": rep.words})
    best = min(rows, key=lambda r: r["measured_words"])
    return {"rows": rows, "best_base": best["base"], "n": n, "M": M}
