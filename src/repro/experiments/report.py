"""Plain-text table rendering for experiment outputs.

Every experiment returns rows of dicts; this module renders them in the
aligned ASCII style the benchmarks print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v: Any) -> str:
    """Compact human formatting: floats to 4 significant digits."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def render_table(
    rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = ""
) -> str:
    """Render a list of dict rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
