"""E8 — latency (message-count) bounds: footnote 8's ``bandwidth / M``.

Both the sequential DF implementations and the parallel algorithms report
message counts; dividing the bandwidth bound by the maximum message size M
gives the latency lower bound every run must respect.
"""

from __future__ import annotations

from repro.algorithms.io_strassen import dfs_io_model
from repro.core.bounds import LG7, latency_bound, parallel_io_bound, sequential_io_bound
from repro.parallel.base import ParallelConfig, get_parallel
from repro.util.matgen import integer_matrix

__all__ = ["sequential_latency", "parallel_latency"]


def sequential_latency(scheme: str = "strassen", M: int = 768, ns=(128, 256, 512, 1024)) -> dict:
    """Messages of DF-Strassen vs ``Ω((n/√M)^ω₀)`` (bound / M)."""
    from repro.cdag.schemes import get_scheme

    s = get_scheme(scheme)
    rows = []
    for n in ns:
        rep = dfs_io_model(n, M, s)
        bw_bound = sequential_io_bound(n, M, s.omega0)
        lat = latency_bound(bw_bound, M)
        rows.append(
            {
                "n": n,
                "measured_messages": rep.messages,
                "latency_bound": lat,
                "measured/bound": rep.messages / lat,
                "measured_words": rep.words,
            }
        )
    return {"rows": rows, "M": M, "scheme": scheme}


def parallel_latency(n: int = 64) -> dict:
    """Message counts of the parallel algorithms vs bound/M per regime."""
    A = integer_matrix(n, seed=11)
    B = integer_matrix(n, seed=13)
    rows = []
    for q in (2, 4, 8):
        p = q * q
        r = get_parallel("cannon").execute(A, B, ParallelConfig(n=n, p=p))
        M = 3 * (n // q) ** 2
        bw = parallel_io_bound(n, M, p, 3.0)
        rows.append(
            {
                "algorithm": "cannon",
                "p": p,
                "measured_messages": r.critical_messages,
                "latency_bound": latency_bound(bw, M),
                "measured_words": r.critical_words,
            }
        )
    n7 = 56
    A7 = integer_matrix(n7, seed=11)
    B7 = integer_matrix(n7, seed=13)
    for sched in ("B", "DB"):
        p = 7
        r = get_parallel("caps").execute(
            A7, B7, ParallelConfig(n=n7, p=p, scheme="strassen", schedule=sched)
        )
        M = r.max_mem_peak
        bw = parallel_io_bound(n7, M, p, LG7)
        rows.append(
            {
                "algorithm": f"caps({sched})",
                "p": p,
                "measured_messages": r.critical_messages,
                "latency_bound": latency_bound(bw, M),
                "measured_words": r.critical_words,
            }
        )
    return {"rows": rows}
