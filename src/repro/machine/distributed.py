"""The simulated distributed-memory machine (§1.1's parallel model).

``p`` processors, each with local memory of size ``M`` words; messages cost
``α + β·n``; words and messages are counted **along the critical path**
(Yang–Miller): transfers that happen simultaneously on disjoint processor
pairs count once, while serialization at one processor is charged in full.

The machine executes *supersteps*: algorithms run rank-by-rank Python code
against per-rank stores of real numpy arrays, and call :meth:`exchange`
with the round's complete message list.  The round's critical-path charge
is ``max_r (words sent by r + words received by r)`` — exactly the model's
"blocking sends, no overlap of a processor's own transfers, free
parallelism across processors" (§1.1, including its example where two
messages into the same processor serialize).

Why a simulator instead of mpi4py: the paper's quantities are *exact word
counts*; real MPI startups, eager/rendezvous thresholds and buffering make
those unobservable (the calibration note for this reproduction says as
much).  Here every send is a numpy array whose size is the charge, and the
numerics still really happen, so every algorithm is verified against
``A @ B`` while its communication is metered exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.counters import CommLog, SuperstepRecord

__all__ = ["Machine", "Message"]


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer inside a superstep."""

    src: int
    dst: int
    key: str
    payload: np.ndarray

    @property
    def words(self) -> int:
        return int(self.payload.size)


class Machine:
    """A ``p``-processor distributed-memory machine with exact accounting.

    Parameters
    ----------
    p:
        Number of processors (ranks 0..p-1).
    memory_limit:
        Optional per-rank capacity in words; :meth:`put` raises
        ``MemoryError`` when a rank would exceed it.  ``None`` disables
        enforcement but peaks are still tracked (the paper's "as long as we
        never use more than M" clause).
    alpha, beta:
        Latency / inverse-bandwidth for the α–β time estimate; the counted
        words/messages are independent of these.
    """

    def __init__(
        self,
        p: int,
        memory_limit: int | None = None,
        alpha: float = 1.0,
        beta: float = 1.0,
    ):
        if p < 1:
            raise ValueError("need at least one processor")
        self.p = int(p)
        self.memory_limit = memory_limit
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._store: list[dict[str, np.ndarray]] = [dict() for _ in range(p)]
        # Per-rank tallies are plain-int lists: put/get/flop run once per
        # simulated block transfer (millions of calls in a CAPS sweep), and
        # numpy scalar indexing is an order of magnitude slower than list
        # indexing there.  The public views stay numpy (see mem_peak/flops).
        self._mem_used = [0] * p
        self._mem_peak = [0] * p
        self._flops = [0] * p
        self._flop_phase = [0] * p
        self.critical_flops = 0
        self.log = CommLog()
        self._log_stack: list[CommLog] = [self.log]

    @property
    def mem_peak(self) -> np.ndarray:
        """Per-rank peak local-memory words (numpy view of the tallies)."""
        return np.asarray(self._mem_peak, dtype=np.int64)

    @property
    def flops(self) -> np.ndarray:
        """Per-rank arithmetic-operation tallies."""
        return np.asarray(self._flops, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # per-rank storage                                                    #
    # ------------------------------------------------------------------ #

    def put(self, rank: int, key: str, value: np.ndarray) -> None:
        """Store an array in a rank's local memory (replacing any old value)."""
        value = np.ascontiguousarray(value)
        if rank < 0 or rank >= self.p:
            self._check_rank(rank)
        store = self._store[rank]
        old = store.get(key)
        delta = value.size - (old.size if old is not None else 0)
        new_used = self._mem_used[rank] + delta
        if self.memory_limit is not None and new_used > self.memory_limit:
            raise MemoryError(
                f"rank {rank} local memory exceeded: {new_used} > "
                f"{self.memory_limit} words (storing {key!r})"
            )
        store[key] = value
        self._mem_used[rank] = new_used
        if new_used > self._mem_peak[rank]:
            self._mem_peak[rank] = new_used

    def get(self, rank: int, key: str) -> np.ndarray:
        """Fetch a rank's local array (zero cost — locality is free)."""
        if rank < 0 or rank >= self.p:
            self._check_rank(rank)
        try:
            return self._store[rank][key]
        except KeyError:
            raise KeyError(f"rank {rank} has no array {key!r}") from None

    def pop(self, rank: int, key: str) -> np.ndarray:
        """Remove and return a local array, releasing its memory."""
        arr = self.get(rank, key)
        del self._store[rank][key]
        self._mem_used[rank] -= int(arr.size)
        return arr

    def delete(self, rank: int, key: str) -> None:
        """Release a local array."""
        self.pop(rank, key)

    def has(self, rank: int, key: str) -> bool:
        self._check_rank(rank)
        return key in self._store[rank]

    def keys(self, rank: int) -> list[str]:
        self._check_rank(rank)
        return sorted(self._store[rank])

    def mem_used(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self._mem_used[rank])

    # ------------------------------------------------------------------ #
    # communication                                                       #
    # ------------------------------------------------------------------ #

    def exchange(self, messages: list[Message] | list[tuple], label: str = "") -> None:
        """Execute one communication superstep.

        ``messages`` may contain raw tuples ``(src, dst, key, payload)``.
        Self-sends are local copies and cost nothing (but are delivered).
        Delivery happens after accounting, so a round is read-consistent:
        payloads must be materialized arrays, not views of receive buffers.
        """
        step = SuperstepRecord(label=label)
        deliveries: list[Message] = []
        for m in messages:
            if not isinstance(m, Message):
                m = Message(*m)
            self._check_rank(m.src)
            self._check_rank(m.dst)
            if m.src == m.dst:
                deliveries.append(m)
                continue
            step.sent[m.src] = step.sent.get(m.src, 0) + m.words
            step.recv[m.dst] = step.recv.get(m.dst, 0) + m.words
            step.msgs[m.src] = step.msgs.get(m.src, 0) + 1
            step.msgs[m.dst] = step.msgs.get(m.dst, 0) + 1
            deliveries.append(m)
        if step.sent or step.recv:
            self._log_stack[-1].add(step)
        for m in deliveries:
            self.put(m.dst, m.key, np.array(m.payload, copy=True))

    # ------------------------------------------------------------------ #
    # parallel regions                                                    #
    # ------------------------------------------------------------------ #

    def parallel(self) -> "_ParallelRegion":
        """Open a parallel region: sibling branches created inside it run
        *concurrently* on disjoint rank groups, so their k-th supersteps
        merge into one combined superstep instead of serializing.

        Usage::

            with machine.parallel() as par:
                for r in range(7):
                    with par.branch():
                        ...   # this branch's exchanges land in its own lane

        The branches must touch disjoint rank sets (asserted at merge time);
        recursive algorithms (CAPS's BFS step) rely on this to be charged
        the critical path of one branch, not the sum of seven.
        """
        return _ParallelRegion(self)

    # ------------------------------------------------------------------ #
    # computation                                                         #
    # ------------------------------------------------------------------ #

    def flop(self, rank: int, count: int) -> None:
        """Charge ``count`` arithmetic operations to a rank (current phase)."""
        if rank < 0 or rank >= self.p:
            self._check_rank(rank)
        if count < 0:
            raise ValueError("negative flop count")
        self._flops[rank] += count
        self._flop_phase[rank] += count

    def end_compute_phase(self) -> None:
        """Close a compute phase: the slowest rank's flops join the critical
        path (processors compute in parallel between communication rounds)."""
        self.critical_flops += max(self._flop_phase)
        self._flop_phase = [0] * self.p

    # ------------------------------------------------------------------ #
    # results                                                             #
    # ------------------------------------------------------------------ #

    @property
    def critical_words(self) -> int:
        """Bandwidth cost along the critical path."""
        return self.log.critical_words

    @property
    def critical_messages(self) -> int:
        """Latency cost along the critical path."""
        return self.log.critical_messages

    @property
    def max_mem_peak(self) -> int:
        """max_r peak local-memory words — the machine's effective M."""
        return max(self._mem_peak)

    def time(self, alpha: float | None = None, beta: float | None = None) -> float:
        """α–β critical-path *time*: ``Σ_steps max_r (α·msgs_r + β·words_r)``.

        Couples latency and bandwidth per rank within each superstep (see
        :meth:`SuperstepRecord.time <repro.machine.counters.SuperstepRecord.time>`),
        so measured runs and analytic α–β formulas are comparable in one
        unit.  Defaults to the machine's own α and β.
        """
        a = self.alpha if alpha is None else float(alpha)
        b = self.beta if beta is None else float(beta)
        return self.log.time(a, b)

    def estimated_time(self, gamma: float = 0.0) -> float:
        """α·messages + β·words (+ γ·flops) along the critical path."""
        self.end_compute_phase()
        return (
            self.alpha * self.critical_messages
            + self.beta * self.critical_words
            + gamma * self.critical_flops
        )

    def summary(self) -> dict:
        """Headline numbers for experiment tables."""
        return {
            "p": self.p,
            "critical_words": self.critical_words,
            "critical_messages": self.critical_messages,
            "total_words": self.log.total_words,
            "supersteps": self.log.n_supersteps,
            "max_mem_peak": self.max_mem_peak,
            "total_flops": sum(self._flops),
        }

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.p):
            raise ValueError(f"rank {rank} out of range [0, {self.p})")


class _ParallelRegion:
    """Context manager collecting sibling branch lanes (see Machine.parallel)."""

    def __init__(self, machine: Machine):
        self._m = machine
        self._lanes: list[CommLog] = []

    def __enter__(self) -> "_ParallelRegion":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        # Merge lanes positionally: the region's k-th superstep is the union
        # of every branch's k-th superstep (branches use disjoint ranks).
        depth = max((len(lane.steps) for lane in self._lanes), default=0)
        target = self._m._log_stack[-1]
        for k in range(depth):
            merged = SuperstepRecord(label="par")
            for lane in self._lanes:
                if k >= len(lane.steps):
                    continue
                s = lane.steps[k]
                if not merged.label or merged.label == "par":
                    merged.label = s.label
                for r, w in s.sent.items():
                    if r in merged.sent:
                        raise ValueError(
                            "parallel branches must use disjoint ranks "
                            f"(rank {r} sends in two branches)"
                        )
                    merged.sent[r] = w
                for r, w in s.recv.items():
                    if r in merged.recv:
                        raise ValueError(
                            "parallel branches must use disjoint ranks "
                            f"(rank {r} receives in two branches)"
                        )
                    merged.recv[r] = w
                for r, c in s.msgs.items():
                    if r in merged.msgs:
                        raise ValueError("parallel branches must use disjoint ranks")
                    merged.msgs[r] = c
            if merged.sent or merged.recv:
                target.add(merged)

    def branch(self) -> "_BranchLane":
        return _BranchLane(self)


class _BranchLane:
    """One branch of a parallel region: its supersteps go to a private lane."""

    def __init__(self, region: _ParallelRegion):
        self._region = region
        self._lane = CommLog()

    def __enter__(self) -> "_BranchLane":
        self._region._m._log_stack.append(self._lane)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = self._region._m._log_stack.pop()
        assert popped is self._lane
        if exc_type is None:
            self._region._lanes.append(self._lane)
