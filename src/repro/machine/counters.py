"""Cost-accounting records shared by the sequential and parallel machines.

Everything the paper's model charges for is tallied here and nowhere else,
so tests can assert conservation properties (e.g. words sent = words
received) against a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOCounter", "SuperstepRecord", "CommLog"]


@dataclass
class IOCounter:
    """Sequential two-level machine tallies (words and messages, §1.1).

    A *message* is a maximal bundle of contiguous words (the model lets
    messages range from one word up to what fits in fast memory), so the
    latency cost of footnote 8 is ``messages``, and bandwidth is ``words``.
    """

    words_read: int = 0
    words_written: int = 0
    messages_read: int = 0
    messages_written: int = 0

    @property
    def words(self) -> int:
        """Total bandwidth cost (words moved in either direction)."""
        return self.words_read + self.words_written

    @property
    def messages(self) -> int:
        """Total latency cost (messages in either direction)."""
        return self.messages_read + self.messages_written

    def read(self, n_words: int) -> None:
        """Charge one slow→fast transfer of ``n_words`` contiguous words."""
        if n_words < 0:
            raise ValueError("negative transfer")
        if n_words:
            self.words_read += n_words
            self.messages_read += 1

    def write(self, n_words: int) -> None:
        """Charge one fast→slow transfer of ``n_words`` contiguous words."""
        if n_words < 0:
            raise ValueError("negative transfer")
        if n_words:
            self.words_written += n_words
            self.messages_written += 1

    def read_many(self, n_messages: int, n_words: int) -> None:
        """Charge ``n_messages`` equal slow→fast transfers of ``n_words`` each.

        Identical tallies to calling :meth:`read` in a loop — one bulk update
        instead of Θ(messages) Python calls, which is what lets the streamed
        linear stages of the depth-first recursion charge a whole pass in
        O(1) (zero-word messages are free, exactly as in :meth:`read`).
        """
        if n_messages < 0 or n_words < 0:
            raise ValueError("negative transfer")
        if n_messages and n_words:
            self.words_read += n_messages * n_words
            self.messages_read += n_messages

    def write_many(self, n_messages: int, n_words: int) -> None:
        """Charge ``n_messages`` equal fast→slow transfers of ``n_words`` each
        (the bulk counterpart of :meth:`write`; see :meth:`read_many`)."""
        if n_messages < 0 or n_words < 0:
            raise ValueError("negative transfer")
        if n_messages and n_words:
            self.words_written += n_messages * n_words
            self.messages_written += n_messages

    def merged(self, other: "IOCounter") -> "IOCounter":
        """Sum of two counters (used when composing sub-runs)."""
        return IOCounter(
            self.words_read + other.words_read,
            self.words_written + other.words_written,
            self.messages_read + other.messages_read,
            self.messages_written + other.messages_written,
        )


@dataclass
class SuperstepRecord:
    """One communication round of the parallel machine.

    ``sent[r]``/``recv[r]`` are the word totals per rank; ``msgs[r]`` the
    message counts.  The critical-path charge of the round is
    ``max_r (sent[r] + recv[r])`` words and ``max_r msgs[r]`` messages —
    simultaneous transfers on different processors count once (§1.1), while
    serialization at a single processor is charged in full.
    """

    sent: dict[int, int] = field(default_factory=dict)
    recv: dict[int, int] = field(default_factory=dict)
    msgs: dict[int, int] = field(default_factory=dict)
    label: str = ""

    def critical_words(self) -> int:
        ranks = set(self.sent) | set(self.recv)
        if not ranks:
            return 0
        return max(self.sent.get(r, 0) + self.recv.get(r, 0) for r in ranks)

    def critical_messages(self) -> int:
        if not self.msgs:
            return 0
        return max(self.msgs.values())

    def time(self, alpha: float, beta: float) -> float:
        """α–β time of the round: ``max_r (α·msgs_r + β·(sent_r + recv_r))``.

        This couples latency and bandwidth *per rank* before taking the max,
        so it can be strictly smaller than ``α·critical_messages() +
        β·critical_words()`` when the message-heavy rank and the word-heavy
        rank differ — the honest critical path of the round.
        """
        ranks = set(self.sent) | set(self.recv) | set(self.msgs)
        if not ranks:
            return 0.0
        return max(
            alpha * self.msgs.get(r, 0)
            + beta * (self.sent.get(r, 0) + self.recv.get(r, 0))
            for r in ranks
        )

    def total_words(self) -> int:
        """Total words sent in the round (for conservation checks)."""
        return sum(self.sent.values())


@dataclass
class CommLog:
    """Accumulated parallel-communication record across supersteps."""

    steps: list[SuperstepRecord] = field(default_factory=list)

    def add(self, step: SuperstepRecord) -> None:
        self.steps.append(step)

    @property
    def critical_words(self) -> int:
        """Bandwidth cost along the critical path (Yang–Miller counting)."""
        return sum(s.critical_words() for s in self.steps)

    @property
    def critical_messages(self) -> int:
        """Latency cost along the critical path."""
        return sum(s.critical_messages() for s in self.steps)

    def time(self, alpha: float, beta: float) -> float:
        """α–β critical-path time: ``Σ_steps max_r (α·msgs_r + β·words_r)``.

        The per-superstep coupling makes this the time a machine with
        per-message latency α and per-word cost β actually spends, summed
        along the critical path; it never exceeds the separable estimate
        ``α·critical_messages + β·critical_words``.
        """
        return sum(s.time(alpha, beta) for s in self.steps)

    @property
    def total_words(self) -> int:
        """Aggregate words over all processors (= p × per-proc average)."""
        return sum(s.total_words() for s in self.steps)

    @property
    def n_supersteps(self) -> int:
        return len(self.steps)

    def per_rank_sent(self) -> dict[int, int]:
        """Total words sent by each rank over the whole run."""
        out: dict[int, int] = {}
        for s in self.steps:
            for r, w in s.sent.items():
                out[r] = out.get(r, 0) + w
        return out
