"""The sequential two-level memory machine (§1.1's sequential model).

Slow memory is unbounded; fast memory holds at most ``M`` words.  Words move
in messages of one-to-``M`` contiguous words.  Algorithms in
:mod:`repro.algorithms.io_classical` / :mod:`repro.algorithms.io_strassen`
run *against this machine*: every operand they touch must be resident, every
transfer is counted, and capacity is enforced — so a measured I/O number is
the exact communication of that implementation, not an estimate.

Two granularities are provided:

* :class:`FastMemory` — block-granular explicit management (``load`` /
  ``store`` / ``free`` of named regions).  This matches how the paper's
  upper-bound implementations are written ("read the two input sub-matrices
  into fast memory …", §1.4.1) and is fast enough for big sweeps.
* :func:`streamed_op` — helper charging the streaming cost of element-wise
  operations on non-resident regions (the additions of the recursion),
  which touch each word a constant number of times regardless of M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.counters import IOCounter

__all__ = ["FastMemory", "Region", "streamed_add_cost"]


@dataclass
class Region:
    """A named contiguous array of words living in slow and/or fast memory."""

    name: str
    size: int
    data: np.ndarray | None = None   # payload (optional; costs are data-free)
    resident: bool = False
    dirty: bool = False


class FastMemory:
    """Explicit fast-memory manager with capacity enforcement.

    The machine tracks which regions are resident and charges the
    :class:`IOCounter` for every load/store.  It refuses to over-commit:
    loading beyond ``M`` raises, so an algorithm cannot accidentally cheat
    its claimed footprint — eviction decisions belong to the *algorithm*
    (this is the model where the program controls transfers; an LRU cache
    sits in :mod:`repro.cdag.pebble` for schedule-level simulations).
    """

    def __init__(self, M: int):
        if M < 1:
            raise ValueError("fast memory must hold at least one word")
        self.M = int(M)
        self.counter = IOCounter()
        self._regions: dict[str, Region] = {}
        self._used = 0
        self.peak_used = 0

    # ------------------------------------------------------------------ #

    @property
    def used(self) -> int:
        """Words currently resident in fast memory."""
        return self._used

    @property
    def available(self) -> int:
        """Remaining fast-memory capacity in words."""
        return self.M - self._used

    def region(self, name: str) -> Region:
        """Look up a registered region by name."""
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions and self._regions[name].resident

    # ------------------------------------------------------------------ #

    def new_slow(self, name: str, size: int, data: np.ndarray | None = None) -> Region:
        """Register a region that lives in slow memory (e.g. an input matrix)."""
        self._check_new(name, size, data)
        r = Region(name, int(size), data, resident=False)
        self._regions[name] = r
        return r

    def alloc_fast(self, name: str, size: int, data: np.ndarray | None = None) -> Region:
        """Create a region directly in fast memory (a scratch buffer).

        Costs no I/O; counts against capacity.
        """
        self._check_new(name, size, data)
        self._reserve(size)
        r = Region(name, int(size), data, resident=True, dirty=True)
        self._regions[name] = r
        return r

    def load(self, name: str) -> Region:
        """Slow→fast transfer of a whole region (one message, size words)."""
        r = self._regions[name]
        if r.resident:
            return r
        self._reserve(r.size)
        self.counter.read(r.size)
        r.resident = True
        r.dirty = False
        return r

    def store(self, name: str) -> Region:
        """Fast→slow transfer (one message); region stays resident."""
        r = self._regions[name]
        if not r.resident:
            raise RuntimeError(f"store of non-resident region {name!r}")
        self.counter.write(r.size)
        r.dirty = False
        return r

    def free(self, name: str, discard: bool = False) -> None:
        """Release a region's fast-memory footprint.

        Dirty regions must either be stored first or explicitly discarded —
        silently dropping computed data is almost always an accounting bug
        in the calling algorithm, so it is an error by default.
        """
        r = self._regions[name]
        if not r.resident:
            return
        if r.dirty and not discard:
            raise RuntimeError(
                f"freeing dirty region {name!r} without store (pass "
                f"discard=True for scratch data)"
            )
        r.resident = False
        self._used -= r.size
        if r.data is None and discard:
            del self._regions[name]

    def drop(self, name: str) -> None:
        """Unregister a non-resident region completely."""
        r = self._regions.pop(name)
        if r.resident:
            self._used -= r.size

    def touch_dirty(self, name: str) -> None:
        """Mark a resident region as modified (the caller computed into it)."""
        r = self._regions[name]
        if not r.resident:
            raise RuntimeError(f"writing to non-resident region {name!r}")
        r.dirty = True

    # ------------------------------------------------------------------ #
    # streaming (element-wise) operations                                 #
    # ------------------------------------------------------------------ #

    def stream(
        self, read_sizes: list[int], write_sizes: list[int], chunk: int | None = None
    ) -> None:
        """Charge a streaming pass: read the operand regions and write the
        results chunk-by-chunk through fast memory.

        Streaming needs only O(1) fast-memory headroom per stream; the cost
        is one read per operand word plus one write per result word, in
        messages of ``chunk`` words (default: the largest chunk that fits,
        ``free // (streams)``, floored at 1).  This is the Θ(n²) "additions"
        term of the recurrences (§1.4.1).
        """
        n_streams = len(read_sizes) + len(write_sizes)
        if n_streams == 0:
            return
        if chunk is None:
            chunk = max(self.available // max(n_streams, 1), 1)
        for size in read_sizes:
            self._charge_stream(size, chunk, is_read=True)
        for size in write_sizes:
            self._charge_stream(size, chunk, is_read=False)

    def _charge_stream(self, size: int, chunk: int, is_read: bool) -> None:
        # Closed form for "full chunks + one remainder message": identical
        # counter totals to charging each message in a loop, but O(1) — the
        # streamed linear stages dominate the depth-first sweeps' run time.
        full, rem = divmod(int(size), int(chunk))
        if is_read:
            self.counter.read_many(full, chunk)
            self.counter.read(rem)
        else:
            self.counter.write_many(full, chunk)
            self.counter.write(rem)

    # ------------------------------------------------------------------ #

    def _reserve(self, size: int) -> None:
        if size > self.available:
            raise MemoryError(
                f"fast memory overflow: need {size} words, have {self.available} "
                f"of {self.M}"
            )
        self._used += size
        self.peak_used = max(self.peak_used, self._used)

    def _check_new(self, name: str, size: int, data: np.ndarray | None) -> None:
        if name in self._regions:
            raise ValueError(f"region {name!r} already exists")
        if size < 0:
            raise ValueError("region size must be nonnegative")
        if data is not None and data.size != size:
            raise ValueError("payload size mismatch")


def streamed_add_cost(operand_words: int, n_operands: int) -> int:
    """Closed-form I/O of a streamed linear combination (reference value):
    read each operand once, write the result once."""
    return operand_words * (n_operands + 1)
