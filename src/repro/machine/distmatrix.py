"""Block-distributed matrices on the simulated machine (2D grids).

The classical parallel algorithms (Cannon, SUMMA, 3D, 2.5D) all view the
machine as a logical grid and own one square block per processor.  This
module provides the grid arithmetic and the free *initial* distribution
(the model assumes inputs start evenly distributed, §1.1, so placing the
blocks costs nothing) plus the free final gather used only to verify the
numerics against ``A @ B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.distributed import Machine

__all__ = ["Grid2D", "Grid3D", "distribute_blocks", "gather_blocks"]


@dataclass(frozen=True)
class Grid2D:
    """A q×q logical processor grid over ranks [0, q²)."""

    q: int

    @property
    def p(self) -> int:
        return self.q * self.q

    def rank(self, i: int, j: int) -> int:
        """Rank of grid position (i, j), row-major, indices taken mod q."""
        return (i % self.q) * self.q + (j % self.q)

    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.q)

    def row(self, i: int) -> list[int]:
        """Ranks of grid row i."""
        return [self.rank(i, j) for j in range(self.q)]

    def col(self, j: int) -> list[int]:
        """Ranks of grid column j."""
        return [self.rank(i, j) for i in range(self.q)]


@dataclass(frozen=True)
class Grid3D:
    """A q×q×c logical grid over ranks [0, q²·c); layer 0 owns the inputs."""

    q: int
    c: int

    @property
    def p(self) -> int:
        return self.q * self.q * self.c

    def rank(self, i: int, j: int, layer: int) -> int:
        return (layer % self.c) * self.q * self.q + (i % self.q) * self.q + (j % self.q)

    def coords(self, rank: int) -> tuple[int, int, int]:
        layer, r = divmod(rank, self.q * self.q)
        i, j = divmod(r, self.q)
        return i, j, layer

    def fiber(self, i: int, j: int) -> list[int]:
        """Ranks of the depth fiber through grid position (i, j)."""
        return [self.rank(i, j, layer) for layer in range(self.c)]


def distribute_blocks(m: Machine, X: np.ndarray, key: str, grid: Grid2D, layer_rank=None) -> None:
    """Place the q×q blocks of X on the grid (free: initial data layout).

    ``layer_rank(i, j) -> rank`` overrides the target ranks (used by 3D/2.5D
    to put inputs on layer 0 of a deeper grid).
    """
    n = X.shape[0]
    q = grid.q
    if n % q != 0:
        raise ValueError(f"matrix size {n} not divisible by grid size {q}")
    b = n // q
    for i in range(q):
        for j in range(q):
            rank = layer_rank(i, j) if layer_rank else grid.rank(i, j)
            m.put(rank, key, X[i * b : (i + 1) * b, j * b : (j + 1) * b].copy())


def gather_blocks(m: Machine, key: str, grid: Grid2D, n: int, layer_rank=None) -> np.ndarray:
    """Collect the blocks into a full matrix host-side (verification only —
    not charged; the model leaves C distributed)."""
    q = grid.q
    b = n // q
    out = np.empty((n, n))
    for i in range(q):
        for j in range(q):
            rank = layer_rank(i, j) if layer_rank else grid.rank(i, j)
            out[i * b : (i + 1) * b, j * b : (j + 1) * b] = m.get(rank, key)
    return out
