"""Collective operations built from point-to-point supersteps.

Costs are *derived* from the actual message pattern, never asserted from a
formula: a broadcast here really performs its ⌈lg g⌉ rounds of sends, so the
words the machine logs are the words a real binomial-tree broadcast moves.
The classical parallel algorithms (SUMMA, 3D, 2.5D) are built on these.

All collectives operate on an explicit ``group`` (list of ranks) so the
recursive algorithms can run them inside processor subsets.
"""

from __future__ import annotations

import numpy as np

from repro.machine.distributed import Machine, Message

__all__ = [
    "broadcast",
    "reduce",
    "allgather",
    "reduce_scatter",
    "scatter",
    "gather",
    "shift",
    "shift_many",
    "broadcast_many",
    "reduce_many",
]


def _group_index(group: list[int], rank: int) -> int:
    try:
        return group.index(rank)
    except ValueError:
        raise ValueError(f"rank {rank} not in group {group}") from None


def broadcast(m: Machine, group: list[int], root: int, key: str, label: str = "bcast") -> None:
    """Binomial-tree broadcast of ``key`` from ``root`` to every group rank.

    ⌈lg g⌉ rounds; in the round with distance ``step``, the ranks at
    root-relative positions ``[0, step)`` (which already hold the value)
    send to positions ``[step, 2·step)``.
    """
    g = len(group)
    ri = _group_index(group, root)
    step = 1
    while step < g:
        msgs = []
        for q in range(step):
            tq = q + step
            if tq < g:
                src = group[(ri + q) % g]
                dst = group[(ri + tq) % g]
                msgs.append(Message(src, dst, key, m.get(src, key)))
        if msgs:
            m.exchange(msgs, label=label)
        step *= 2


def reduce(
    m: Machine,
    group: list[int],
    root: int,
    key: str,
    out_key: str | None = None,
    label: str = "reduce",
) -> None:
    """Binomial-tree sum-reduction of ``key`` onto ``root``.

    The mirror of :func:`broadcast`: with ``step`` halving, root-relative
    positions ``[step, 2·step)`` send their partials to ``[0, step)``, which
    accumulate.  The root ends with the group sum under ``out_key``
    (default: ``key``); other ranks' partials are consumed.
    """
    out_key = out_key or key
    g = len(group)
    ri = _group_index(group, root)
    partial = {q: m.get(group[(ri + q) % g], key).copy() for q in range(g)}
    step = 1
    while step < g:
        step *= 2
    step //= 2
    while step >= 1:
        msgs = []
        pairs = []
        for q in range(step, min(2 * step, g)):
            src = group[(ri + q) % g]
            dst = group[(ri + q - step) % g]
            msgs.append(Message(src, dst, f"__red_{key}", partial[q]))
            pairs.append((q, q - step))
        if msgs:
            m.exchange(msgs, label=label)
            for q_src, q_dst in pairs:
                rank_dst = group[(ri + q_dst) % g]
                incoming = m.pop(rank_dst, f"__red_{key}")
                partial[q_dst] = partial[q_dst] + incoming
                m.flop(rank_dst, int(incoming.size))
                del partial[q_src]
        step //= 2
    m.put(root, out_key, partial[0])


def allgather(
    m: Machine, group: list[int], key: str, out_key: str, label: str = "allgather"
) -> None:
    """Recursive-doubling allgather: every rank ends with the concatenation
    (in group order) of all ranks' ``key`` arrays under ``out_key``.

    Non-power-of-two groups fall back to a ring (g−1 rounds), which moves
    the same asymptotic volume.
    """
    g = len(group)
    chunks: list[dict[int, np.ndarray]] = [
        {i: m.get(group[i], key)} for i in range(g)
    ]
    if g & (g - 1) == 0:
        step = 1
        while step < g:
            msgs = []
            pairs = []
            for i in range(g):
                j = i ^ step
                if j < g:
                    payload = np.concatenate([chunks[i][t].ravel() for t in sorted(chunks[i])])
                    msgs.append(Message(group[i], group[j], f"__ag_{key}_{i}", payload))
                    pairs.append((i, j))
            m.exchange(msgs, label=label)
            new_chunks = [dict(c) for c in chunks]
            for i, j in pairs:
                new_chunks[j].update(chunks[i])
                m.delete(group[j], f"__ag_{key}_{i}")
            chunks = new_chunks
            step *= 2
    else:
        for r in range(g - 1):
            msgs = []
            for i in range(g):
                j = (i + 1) % g
                piece = (i - r) % g
                msgs.append(Message(group[i], group[j], f"__ag_{key}_{piece}", chunks[i][piece]))
            m.exchange(msgs, label=label)
            for i in range(g):
                piece = (i - r) % g
                j = (i + 1) % g
                chunks[j][piece] = m.pop(group[j], f"__ag_{key}_{piece}")
    for i in range(g):
        full = np.concatenate([chunks[i][t].ravel() for t in range(g)])
        m.put(group[i], out_key, full)


def reduce_scatter(
    m: Machine, group: list[int], key: str, out_key: str, label: str = "reduce_scatter"
) -> None:
    """Pairwise-exchange reduce-scatter: ``key`` holds g equal slabs on every
    rank; rank i ends with the group-sum of slab i under ``out_key``.

    g−1 cyclic rounds; in round d, rank i sends its local contribution to
    slab (i+d) mod g directly to that slab's owner.  Moves the
    bandwidth-optimal (g−1)/g of the data per rank.
    """
    g = len(group)
    slabs = {i: np.array_split(m.get(group[i], key).ravel(), g) for i in range(g)}
    acc = {i: slabs[i][i].copy() for i in range(g)}
    for d in range(1, g):
        msgs = []
        for i in range(g):
            j = (i + d) % g
            msgs.append(Message(group[i], group[j], f"__rs_{key}", slabs[i][j]))
        m.exchange(msgs, label=label)
        for i in range(g):
            incoming = m.pop(group[i], f"__rs_{key}")
            acc[i] = acc[i] + incoming
            m.flop(group[i], int(incoming.size))
    for i in range(g):
        m.put(group[i], out_key, acc[i])


def scatter(
    m: Machine, group: list[int], root: int, key: str, out_key: str, label: str = "scatter"
) -> None:
    """Root splits ``key`` into g equal slabs and sends slab i to group[i]."""
    g = len(group)
    data = m.get(root, key)
    slabs = np.array_split(data.ravel(), g)
    msgs = []
    for i in range(g):
        if group[i] == root:
            m.put(root, out_key, slabs[i].copy())
        else:
            msgs.append(Message(root, group[i], out_key, slabs[i]))
    m.exchange(msgs, label=label)


def gather(
    m: Machine, group: list[int], root: int, key: str, out_key: str, label: str = "gather"
) -> None:
    """Inverse of scatter: root concatenates all ranks' ``key`` arrays."""
    msgs = []
    parts: dict[int, np.ndarray] = {}
    for i, r in enumerate(group):
        if r == root:
            parts[i] = m.get(r, key)
        else:
            msgs.append(Message(r, root, f"__ga_{key}_{i}", m.get(r, key)))
    m.exchange(msgs, label=label)
    for i, r in enumerate(group):
        if r != root:
            parts[i] = m.pop(root, f"__ga_{key}_{i}")
    m.put(root, out_key, np.concatenate([parts[i].ravel() for i in range(len(group))]))


def shift(m: Machine, group: list[int], key: str, offset: int, label: str = "shift") -> None:
    """Cyclic shift within the group: rank i's ``key`` moves to rank i+offset."""
    g = len(group)
    msgs = []
    payloads = {i: m.get(group[i], key) for i in range(g)}
    for i in range(g):
        j = (i + offset) % g
        msgs.append(Message(group[i], group[j], key, payloads[i]))
    m.exchange(msgs, label=label)


# ---------------------------------------------------------------------- #
# batched variants: many disjoint groups operating simultaneously         #
# ---------------------------------------------------------------------- #
#
# On a real machine, q rows of a grid shift (or broadcast) at the same
# time; charging their rounds as separate supersteps would serialize them
# on the critical path.  The *_many variants run the same round structure
# with the messages of all (disjoint) groups merged per round.


def _assert_disjoint(groups: list[list[int]]) -> None:
    seen: set[int] = set()
    for g in groups:
        for r in g:
            if r in seen:
                raise ValueError("batched collectives require disjoint groups")
            seen.add(r)


def shift_many(
    m: Machine, groups: list[list[int]], key: str, offset: int, label: str = "shift"
) -> None:
    """Simultaneous cyclic shifts in many disjoint groups (one superstep)."""
    _assert_disjoint(groups)
    msgs = []
    for group in groups:
        g = len(group)
        payloads = {i: m.get(group[i], key) for i in range(g)}
        for i in range(g):
            msgs.append(Message(group[i], group[(i + offset) % g], key, payloads[i]))
    m.exchange(msgs, label=label)


def broadcast_many(
    m: Machine, groups_roots: list[tuple[list[int], int]], key: str, label: str = "bcast"
) -> None:
    """Simultaneous binomial broadcasts in many disjoint groups.

    Rounds are shared: in round ``step`` every group whose size exceeds
    ``step`` contributes its sends, and all of them form one superstep.
    """
    _assert_disjoint([g for g, _ in groups_roots])
    if not groups_roots:
        return
    max_g = max(len(g) for g, _ in groups_roots)
    ris = [_group_index(g, root) for g, root in groups_roots]
    step = 1
    while step < max_g:
        msgs = []
        for (group, _root), ri in zip(groups_roots, ris):
            g = len(group)
            for q in range(step):
                tq = q + step
                if tq < g:
                    src = group[(ri + q) % g]
                    dst = group[(ri + tq) % g]
                    msgs.append(Message(src, dst, key, m.get(src, key)))
        if msgs:
            m.exchange(msgs, label=label)
        step *= 2


def reduce_many(
    m: Machine,
    groups_roots: list[tuple[list[int], int]],
    key: str,
    out_key: str | None = None,
    label: str = "reduce",
) -> None:
    """Simultaneous binomial sum-reductions in many disjoint groups."""
    _assert_disjoint([g for g, _ in groups_roots])
    out_key = out_key or key
    if not groups_roots:
        return
    states = []
    for group, root in groups_roots:
        g = len(group)
        ri = _group_index(group, root)
        partial = {q: m.get(group[(ri + q) % g], key).copy() for q in range(g)}
        states.append((group, ri, partial))
    max_g = max(len(g) for g, _ in groups_roots)
    step = 1
    while step < max_g:
        step *= 2
    step //= 2
    while step >= 1:
        msgs = []
        todo = []
        for group, ri, partial in states:
            g = len(group)
            for q in range(step, min(2 * step, g)):
                if q in partial:
                    src = group[(ri + q) % g]
                    dst = group[(ri + q - step) % g]
                    msgs.append(Message(src, dst, f"__red_{key}", partial[q]))
                    todo.append((group, ri, partial, q, q - step))
        if msgs:
            m.exchange(msgs, label=label)
            for group, ri, partial, q_src, q_dst in todo:
                rank_dst = group[(ri + q_dst) % len(group)]
                incoming = m.pop(rank_dst, f"__red_{key}")
                partial[q_dst] = partial[q_dst] + incoming
                m.flop(rank_dst, int(incoming.size))
                del partial[q_src]
        step //= 2
    for (group, root), (group2, ri, partial) in zip(groups_roots, states):
        m.put(root, out_key, partial[0])
