"""Machine models: the sequential two-level memory and the parallel α–β machine."""

from repro.machine.cache import FastMemory, Region, streamed_add_cost
from repro.machine.counters import CommLog, IOCounter, SuperstepRecord
from repro.machine.distributed import Machine, Message
from repro.machine.collectives import (
    allgather,
    broadcast,
    broadcast_many,
    gather,
    reduce,
    reduce_many,
    reduce_scatter,
    scatter,
    shift,
    shift_many,
)
from repro.machine.distmatrix import Grid2D, Grid3D, distribute_blocks, gather_blocks

__all__ = [
    "FastMemory",
    "Region",
    "streamed_add_cost",
    "CommLog",
    "IOCounter",
    "SuperstepRecord",
    "Machine",
    "Message",
    "allgather",
    "broadcast",
    "broadcast_many",
    "gather",
    "reduce",
    "reduce_many",
    "reduce_scatter",
    "scatter",
    "shift",
    "shift_many",
    "Grid2D",
    "Grid3D",
    "distribute_blocks",
    "gather_blocks",
]
