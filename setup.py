"""Shim for environments without network access to build-backend wheels.

All metadata lives in pyproject.toml; this file only lets ``pip install -e .``
use the legacy setuptools path when PEP-517 build isolation cannot download
its requirements (offline CI).
"""

from setuptools import setup

setup()
